//! Continuous-traffic workloads: the paper's algorithms plugged into
//! the injection/drain engine (`radio_throughput::traffic`,
//! DESIGN.md §9).
//!
//! Three [`TrafficWorkload`] implementations cover the throughput
//! story the one-shot experiments cannot see:
//!
//! * [`DecayTraffic`] — the baseline: repeated one-shot Decay, one
//!   message in service at a time. Sequential service means the
//!   sustainable rate is `1 / E[service]` — the full
//!   `Θ((D + log n) · log n / (1−p))` broadcast time is paid *per
//!   message*.
//! * [`XinXiaTraffic`] — the oblivious Xin–Xia frame-TDMA pipeline
//!   (arXiv:1709.01494) run continuously: node `j` of BFS layer `ℓ`
//!   owns slot `3j + (ℓ mod 3)` of every `3W`-round frame (`W` the
//!   widest layer) and round-robins its relay queue through it, so
//!   many messages march through the layering at once and a lost hop
//!   is retried next frame. Collision-free by the same
//!   residue-separation argument as `schedules::latency::xin_xia_pipeline`.
//! * [`RlncTraffic`] — generation-batched RLNC (paper §4.2): arrivals
//!   are grouped into generations of up to `gen_size` messages, each
//!   generation broadcast as one `core::multi_message`-style coded
//!   batch under Decay timing; all messages of a generation complete
//!   when every node's decoder reaches full rank.
//!
//! All three keep the conservation invariant the driver checks every
//! round (`injected == delivered + queued`): the source behavior's
//! [`NodeBehavior::queued`] depth is exactly its injected-but-
//! unretired count, and non-source nodes report 0 — relay-queue
//! occupancy is protocol-internal and observable through
//! `RoundTrace::queued_nodes` in traced runs instead.

use std::collections::{HashSet, VecDeque};
use std::ops::Range;

use netgraph::bfs::BfsLayers;
use netgraph::{Graph, NodeId};
use radio_coding::rlnc::{CodedPacket, RlncNode};
use radio_coding::Gf256;
use radio_model::{Action, Channel, Ctx, NodeBehavior, Reception};
use radio_throughput::traffic::{
    run_traffic, ThroughputRun, TrafficConfig, TrafficError, TrafficWorkload,
};

use crate::decay::{default_phase_len, DecayNode};
use crate::CoreError;

/// Maps a traffic-layer error into the core error vocabulary.
fn traffic_err(e: TrafficError) -> CoreError {
    match e {
        TrafficError::InvalidRate { rate } => CoreError::InvalidParameter {
            reason: format!("arrival rate must be finite and > 0, got {rate}"),
        },
        TrafficError::Model(m) => CoreError::Model(m),
    }
}

fn check_source(graph: &Graph, source: NodeId) -> Result<(), CoreError> {
    let n = graph.node_count();
    if source.index() >= n {
        return Err(CoreError::InvalidParameter {
            reason: format!("source {source} out of bounds for {n} nodes"),
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Decay baseline
// ---------------------------------------------------------------------------

/// Repeated one-shot Decay as a traffic workload: messages are served
/// strictly one at a time, each by a fresh Decay broadcast (the phase
/// clock keeps running on the global round, exactly like
/// [`crate::decay::DecayNode`]).
///
/// With a single injected message this degenerates bit-for-bit to
/// [`crate::decay::Decay::run_profiled`] on the same seed — the
/// regression test in `tests/traffic_invariants.rs` pins that.
#[derive(Debug)]
pub struct DecayTraffic {
    n: usize,
    source: NodeId,
    phase_len: u32,
    active: Option<u64>,
    pending: VecDeque<u64>,
}

impl DecayTraffic {
    /// Compiles the workload for `graph`, deriving the canonical phase
    /// length `⌈log₂ n⌉ + 1`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] if `source` is out of bounds.
    pub fn new(graph: &Graph, source: NodeId) -> Result<Self, CoreError> {
        check_source(graph, source)?;
        Ok(DecayTraffic {
            n: graph.node_count(),
            source,
            phase_len: default_phase_len(graph.node_count()),
            active: None,
            pending: VecDeque::new(),
        })
    }
}

/// Per-node [`DecayTraffic`] behavior: Decay's step rule over the
/// currently active message, plus the source's backlog counter.
#[derive(Debug, Clone)]
pub struct DecayTrafficNode {
    /// Whether this node holds the active message.
    informed: bool,
    phase_len: u32,
    /// Source only: injected-but-unretired messages (the engine-polled
    /// backlog).
    outstanding: u64,
}

impl NodeBehavior<u64> for DecayTrafficNode {
    fn act(&mut self, ctx: &mut Ctx<'_>) -> Action<u64> {
        // Identical RNG discipline to `DecayNode`: only an informed
        // node draws, one gen_bool per round, so the one-message run
        // replays the one-shot trajectory exactly.
        if !self.informed {
            return Action::Listen;
        }
        if DecayNode::draw_broadcast(self.phase_len, ctx.round, ctx.rng) {
            Action::Broadcast(0)
        } else {
            Action::Listen
        }
    }

    fn receive(&mut self, _ctx: &mut Ctx<'_>, rx: Reception<u64>) {
        if rx.is_packet() {
            self.informed = true;
        }
    }

    fn decoded(&self) -> bool {
        self.informed
    }

    // Quiescence opt-in, as for `DecayNode`: uninformed nodes listen
    // without drawing. The source additionally stays swept through its
    // `queued` backlog, and every injection goes through
    // `Simulator::behaviors_mut`, which re-activates it regardless.
    fn wants_poll(&self) -> bool {
        self.informed
    }

    fn queued(&self) -> u64 {
        self.outstanding
    }
}

impl TrafficWorkload for DecayTraffic {
    type Packet = u64;
    type Node = DecayTrafficNode;

    fn behaviors(&mut self) -> Vec<DecayTrafficNode> {
        self.active = None;
        self.pending.clear();
        (0..self.n)
            .map(|_| DecayTrafficNode {
                informed: false,
                phase_len: self.phase_len,
                outstanding: 0,
            })
            .collect()
    }

    fn inject(&mut self, nodes: &mut [DecayTrafficNode], ids: Range<u64>) {
        nodes[self.source.index()].outstanding += ids.end - ids.start;
        self.pending.extend(ids);
    }

    fn drain(&mut self, nodes: &mut [DecayTrafficNode]) -> Vec<u64> {
        let mut out = Vec::new();
        loop {
            if let Some(m) = self.active {
                if nodes.iter().all(|nd| nd.informed) {
                    for nd in nodes.iter_mut() {
                        nd.informed = false;
                    }
                    nodes[self.source.index()].outstanding -= 1;
                    self.active = None;
                    out.push(m);
                } else {
                    break;
                }
            }
            match self.pending.pop_front() {
                Some(m) => {
                    nodes[self.source.index()].informed = true;
                    self.active = Some(m);
                }
                None => break,
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Xin–Xia frame-TDMA pipeline
// ---------------------------------------------------------------------------

/// The oblivious Xin–Xia pipeline as a continuous relay: per-node
/// FIFO relay queues served round-robin in the node's own TDMA slot.
///
/// Messages are never generation-batched and never collide; under a
/// per-delivery loss channel a hop simply retries in the next frame,
/// so the sustainable rate on a path is `≈ (1−p) / frame_len` — far
/// above sequential Decay's `1 / E[service]`.
///
/// Retirement is in injection order (head-of-line commit): a message
/// that completes out of order retires once everything injected
/// before it has. That keeps the global-ACK scan `O(n)` per round at
/// any backlog, at the cost of slightly conservative completion
/// stamps for reordered messages.
#[derive(Debug)]
pub struct XinXiaTraffic {
    n: usize,
    source: NodeId,
    /// Per-node broadcast slot within the frame (`3j + ℓ mod 3`).
    slots: Vec<u64>,
    frame_len: u64,
    /// Injected-but-unretired ids, in injection order.
    in_flight: VecDeque<u64>,
}

impl XinXiaTraffic {
    /// Compiles the BFS layering and slot assignment for `graph`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] if `source` is out of bounds or
    /// the graph is disconnected (the layering must span the graph).
    pub fn new(graph: &Graph, source: NodeId) -> Result<Self, CoreError> {
        check_source(graph, source)?;
        let n = graph.node_count();
        let layers = BfsLayers::compute(graph, source);
        if !layers.spans_graph() {
            return Err(CoreError::InvalidParameter {
                reason: format!(
                    "graph is disconnected: only {} of {n} nodes reachable from {source}",
                    layers.reachable_count()
                ),
            });
        }
        let depth = layers.layer_count();
        let width = (0..depth).map(|l| layers.layer(l).len()).max().unwrap_or(1);
        let mut slots = vec![0u64; n];
        for l in 0..depth {
            for (j, &v) in layers.layer(l).iter().enumerate() {
                slots[v.index()] = (3 * j + l % 3) as u64;
            }
        }
        Ok(XinXiaTraffic {
            n,
            source,
            slots,
            frame_len: 3 * width as u64,
            in_flight: VecDeque::new(),
        })
    }

    /// The frame length `3·W` in rounds.
    pub fn frame_len(&self) -> u64 {
        self.frame_len
    }
}

/// Per-node [`XinXiaTraffic`] behavior: a relay queue round-robined
/// through the node's TDMA slot.
#[derive(Debug, Clone)]
pub struct XinXiaTrafficNode {
    slot: u64,
    frame_len: u64,
    /// Unretired messages this node holds, in round-robin order.
    relay: VecDeque<u64>,
    /// Messages this node holds (for the global completion scan).
    has: HashSet<u64>,
    /// Source only: injected-but-unretired count.
    outstanding: u64,
}

impl XinXiaTrafficNode {
    /// Whether this node currently holds message `m`.
    fn holds(&self, m: u64) -> bool {
        self.has.contains(&m)
    }
}

impl NodeBehavior<u64> for XinXiaTrafficNode {
    fn act(&mut self, ctx: &mut Ctx<'_>) -> Action<u64> {
        if ctx.round % self.frame_len != self.slot {
            return Action::Listen;
        }
        match self.relay.pop_front() {
            Some(m) => {
                // Round-robin: requeue for the next frame; the message
                // leaves the queue only on global retirement.
                self.relay.push_back(m);
                Action::Broadcast(m)
            }
            None => Action::Listen,
        }
    }

    fn receive(&mut self, _ctx: &mut Ctx<'_>, rx: Reception<u64>) {
        if let Reception::Packet(m) = rx {
            if self.has.insert(m) {
                self.relay.push_back(m);
            }
        }
    }

    fn decoded(&self) -> bool {
        !self.has.is_empty()
    }

    // Quiescence opt-in: with an empty relay queue the slot-gated
    // `act` neither draws nor mutates (it only cycles a non-empty
    // queue), and only packets change state.
    fn wants_poll(&self) -> bool {
        !self.relay.is_empty()
    }

    fn queued(&self) -> u64 {
        self.outstanding
    }
}

impl TrafficWorkload for XinXiaTraffic {
    type Packet = u64;
    type Node = XinXiaTrafficNode;

    fn behaviors(&mut self) -> Vec<XinXiaTrafficNode> {
        self.in_flight.clear();
        (0..self.n)
            .map(|i| XinXiaTrafficNode {
                slot: self.slots[i],
                frame_len: self.frame_len,
                relay: VecDeque::new(),
                has: HashSet::new(),
                outstanding: 0,
            })
            .collect()
    }

    fn inject(&mut self, nodes: &mut [XinXiaTrafficNode], ids: Range<u64>) {
        let src = &mut nodes[self.source.index()];
        src.outstanding += ids.end - ids.start;
        for m in ids {
            src.has.insert(m);
            src.relay.push_back(m);
            self.in_flight.push_back(m);
        }
    }

    fn drain(&mut self, nodes: &mut [XinXiaTrafficNode]) -> Vec<u64> {
        let mut done = Vec::new();
        // Head-of-line commit: only the oldest in-flight message is
        // checked; a completed head cascades into the next.
        while let Some(&m) = self.in_flight.front() {
            if nodes.iter().all(|nd| nd.holds(m)) {
                self.in_flight.pop_front();
                done.push(m);
            } else {
                break;
            }
        }
        if !done.is_empty() {
            for nd in nodes.iter_mut() {
                for &m in &done {
                    nd.has.remove(&m);
                }
                nd.relay.retain(|m| !done.contains(m));
            }
            nodes[self.source.index()].outstanding -= done.len() as u64;
        }
        done
    }
}

// ---------------------------------------------------------------------------
// Generation-batched RLNC
// ---------------------------------------------------------------------------

/// Generation-batched RLNC traffic: pending arrivals are grouped into
/// generations of up to `gen_size` messages; each generation is a
/// fresh coded batch (coefficients only, Decay-timed random
/// combinations, as in [`crate::multi_message::DecayRlnc`]) and
/// completes when every node's decoder reaches full rank.
///
/// Batching amortizes the pipeline fill: per-message cost inside a
/// generation is `O(log n / (1−p))` rounds instead of the full
/// broadcast time, so the sustainable rate beats sequential Decay by
/// ≈ the batch factor while staying below the collision-free Xin–Xia
/// pipeline's.
#[derive(Debug)]
pub struct RlncTraffic {
    n: usize,
    source: NodeId,
    phase_len: u32,
    gen_size: usize,
    /// Generation counter (tags packets so stale ones are ignored).
    generation: u64,
    active: Option<Vec<u64>>,
    pending: VecDeque<u64>,
}

impl RlncTraffic {
    /// Compiles the workload: canonical Decay phase length,
    /// generations of up to `gen_size` messages.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] if `source` is out of bounds or
    /// `gen_size` is outside `1..=255` (GF(256) coefficients).
    pub fn new(graph: &Graph, source: NodeId, gen_size: usize) -> Result<Self, CoreError> {
        check_source(graph, source)?;
        if gen_size == 0 || gen_size > 255 {
            return Err(CoreError::InvalidParameter {
                reason: format!("gen_size = {gen_size} outside supported range 1..=255"),
            });
        }
        Ok(RlncTraffic {
            n: graph.node_count(),
            source,
            phase_len: default_phase_len(graph.node_count()),
            gen_size,
            generation: 0,
            active: None,
            pending: VecDeque::new(),
        })
    }
}

/// Per-node [`RlncTraffic`] behavior: an RLNC decoder for the current
/// generation (idle between generations), Decay broadcast timing.
#[derive(Debug, Clone)]
pub struct RlncTrafficNode {
    /// The decoder of the current generation; `None` while idle.
    state: Option<RlncNode<Gf256>>,
    /// The generation the decoder belongs to.
    generation: u64,
    phase_len: u32,
    /// Source only: injected-but-unretired count.
    outstanding: u64,
}

impl NodeBehavior<(u64, CodedPacket<Gf256>)> for RlncTrafficNode {
    fn act(&mut self, ctx: &mut Ctx<'_>) -> Action<(u64, CodedPacket<Gf256>)> {
        let Some(state) = &self.state else {
            return Action::Listen;
        };
        if DecayNode::draw_broadcast(self.phase_len, ctx.round, ctx.rng) {
            match state.random_combination(ctx.rng) {
                Some(packet) => Action::Broadcast((self.generation, packet)),
                None => Action::Listen,
            }
        } else {
            Action::Listen
        }
    }

    fn receive(&mut self, _ctx: &mut Ctx<'_>, rx: Reception<(u64, CodedPacket<Gf256>)>) {
        if let Reception::Packet((generation, packet)) = rx {
            if generation == self.generation {
                if let Some(state) = &mut self.state {
                    state.absorb(packet);
                }
            }
        }
    }

    fn decoded(&self) -> bool {
        self.state.as_ref().is_some_and(|s| s.can_decode())
    }

    // Quiescence opt-in: between generations (`state == None`) the
    // node listens without drawing and discards every reception, so
    // the engine may skip it until `drain` starts the next generation
    // (which runs under `Simulator::behaviors_mut` and re-activates).
    fn wants_poll(&self) -> bool {
        self.state.is_some()
    }

    fn queued(&self) -> u64 {
        self.outstanding
    }
}

impl TrafficWorkload for RlncTraffic {
    type Packet = (u64, CodedPacket<Gf256>);
    type Node = RlncTrafficNode;

    fn behaviors(&mut self) -> Vec<RlncTrafficNode> {
        self.generation = 0;
        self.active = None;
        self.pending.clear();
        (0..self.n)
            .map(|_| RlncTrafficNode {
                state: None,
                generation: 0,
                phase_len: self.phase_len,
                outstanding: 0,
            })
            .collect()
    }

    fn inject(&mut self, nodes: &mut [RlncTrafficNode], ids: Range<u64>) {
        nodes[self.source.index()].outstanding += ids.end - ids.start;
        self.pending.extend(ids);
    }

    fn drain(&mut self, nodes: &mut [RlncTrafficNode]) -> Vec<u64> {
        let mut out = Vec::new();
        loop {
            if let Some(ids) = &self.active {
                if nodes.iter().all(|nd| nd.decoded()) {
                    nodes[self.source.index()].outstanding -= ids.len() as u64;
                    out.extend(ids.iter().copied());
                    for nd in nodes.iter_mut() {
                        nd.state = None;
                    }
                    self.active = None;
                } else {
                    break;
                }
            }
            if self.pending.is_empty() {
                break;
            }
            let k = self.gen_size.min(self.pending.len());
            let ids: Vec<u64> = self.pending.drain(..k).collect();
            self.generation += 1;
            // Coefficient-only generation: payloads are empty, ids are
            // tracked here — decoding rank is what is measured.
            let payloads: Vec<Vec<Gf256>> = vec![Vec::new(); k];
            for (i, nd) in nodes.iter_mut().enumerate() {
                nd.generation = self.generation;
                nd.state = Some(if i == self.source.index() {
                    RlncNode::source(k, 0, &payloads)
                } else {
                    RlncNode::new(k, 0)
                });
            }
            self.active = Some(ids);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Convenience runners
// ---------------------------------------------------------------------------

/// Runs continuous Decay-baseline traffic (see [`DecayTraffic`]).
///
/// # Errors
///
/// [`CoreError::InvalidParameter`] on a bad source or rate;
/// [`CoreError::Model`] from the simulator.
pub fn run_decay_traffic(
    graph: &Graph,
    source: NodeId,
    channel: Channel,
    config: &TrafficConfig,
    seed: u64,
) -> Result<ThroughputRun, CoreError> {
    let mut w = DecayTraffic::new(graph, source)?;
    run_traffic(graph, channel, &mut w, config, seed).map_err(traffic_err)
}

/// Runs continuous Xin–Xia pipelined traffic (see [`XinXiaTraffic`]).
///
/// # Errors
///
/// As [`run_decay_traffic`], plus rejection of disconnected graphs.
pub fn run_xin_xia_traffic(
    graph: &Graph,
    source: NodeId,
    channel: Channel,
    config: &TrafficConfig,
    seed: u64,
) -> Result<ThroughputRun, CoreError> {
    let mut w = XinXiaTraffic::new(graph, source)?;
    run_traffic(graph, channel, &mut w, config, seed).map_err(traffic_err)
}

/// Runs generation-batched RLNC traffic (see [`RlncTraffic`]).
///
/// # Errors
///
/// As [`run_decay_traffic`], plus rejection of a bad `gen_size`.
pub fn run_rlnc_traffic(
    graph: &Graph,
    source: NodeId,
    gen_size: usize,
    channel: Channel,
    config: &TrafficConfig,
    seed: u64,
) -> Result<ThroughputRun, CoreError> {
    let mut w = RlncTraffic::new(graph, source, gen_size)?;
    run_traffic(graph, channel, &mut w, config, seed).map_err(traffic_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators;

    fn cfg(rate: f64, messages: u64, max_rounds: u64) -> TrafficConfig {
        TrafficConfig {
            rate,
            messages,
            max_rounds,
            shards: 1,
        }
    }

    #[test]
    fn decay_traffic_drains_light_load() {
        let g = generators::path(8);
        let run = run_decay_traffic(
            &g,
            NodeId::new(0),
            Channel::receiver(0.3).unwrap(),
            &cfg(0.002, 4, 100_000),
            5,
        )
        .unwrap();
        assert!(run.drained() && run.conserved);
        assert_eq!(run.delivered, 4);
        assert_eq!(run.latencies.len(), 4);
        assert!(run.latencies.iter().all(|&l| l > 0));
    }

    #[test]
    fn xin_xia_traffic_pipelines_on_the_path() {
        // Faultless path: frame_len = 3, one hop per frame. Messages
        // pipeline instead of queueing sequentially.
        let g = generators::path(8);
        let mut w = XinXiaTraffic::new(&g, NodeId::new(0)).unwrap();
        assert_eq!(w.frame_len(), 3);
        let run = run_traffic(&g, Channel::faultless(), &mut w, &cfg(0.2, 6, 10_000), 1).unwrap();
        assert!(run.drained() && run.conserved);
        assert_eq!(run.delivered, 6);
        // Sequential service would need ≥ 6 · 7 hops · 3 rounds; the
        // pipeline overlaps messages and finishes much sooner.
        assert!(
            run.rounds < 6 * 7 * 3,
            "pipeline did not overlap: {} rounds",
            run.rounds
        );
    }

    #[test]
    fn xin_xia_traffic_survives_noise_and_erasures_identically() {
        // The relay only matches Packet, so erasure(p) trajectories
        // equal receiver(p) trajectories per seed.
        let g = generators::grid(4, 4);
        let run_with = |channel| {
            let mut w = XinXiaTraffic::new(&g, NodeId::new(0)).unwrap();
            run_traffic(&g, channel, &mut w, &cfg(0.05, 5, 50_000), 9).unwrap()
        };
        let noisy = run_with(Channel::receiver(0.4).unwrap());
        let erased = run_with(Channel::erasure(0.4).unwrap());
        assert!(noisy.drained() && noisy.conserved);
        assert_eq!(noisy.rounds, erased.rounds);
        assert_eq!(noisy.latencies, erased.latencies);
    }

    #[test]
    fn rlnc_traffic_batches_generations() {
        let g = generators::path(6);
        let run = run_rlnc_traffic(
            &g,
            NodeId::new(0),
            4,
            Channel::receiver(0.3).unwrap(),
            &cfg(0.5, 8, 200_000),
            3,
        )
        .unwrap();
        assert!(run.drained() && run.conserved);
        assert_eq!(run.delivered, 8);
        // λ = 0.5 front-loads arrivals, so messages batch into
        // generations and generation-mates complete together.
        let mut distinct: Vec<u64> = run
            .latencies
            .iter()
            .zip(0u64..)
            .map(|(&lat, m)| lat + m * 2) // completion round = latency + arrival
            .collect();
        distinct.dedup();
        assert!(
            distinct.len() < 8,
            "expected shared generation completion rounds, got {distinct:?}"
        );
    }

    #[test]
    fn rlnc_traffic_rejects_bad_gen_size() {
        let g = generators::path(4);
        for gen_size in [0usize, 256] {
            assert!(matches!(
                RlncTraffic::new(&g, NodeId::new(0), gen_size),
                Err(CoreError::InvalidParameter { .. })
            ));
        }
    }

    #[test]
    fn workloads_reject_bad_sources_and_disconnection() {
        let g = generators::path(4);
        assert!(DecayTraffic::new(&g, NodeId::new(9)).is_err());
        assert!(XinXiaTraffic::new(&g, NodeId::new(9)).is_err());
        assert!(RlncTraffic::new(&g, NodeId::new(9), 4).is_err());
        let disconnected = Graph::from_edges(4, [(NodeId::new(0), NodeId::new(1))]).unwrap();
        assert!(XinXiaTraffic::new(&disconnected, NodeId::new(0)).is_err());
        assert!(matches!(
            run_decay_traffic(
                &g,
                NodeId::new(0),
                Channel::faultless(),
                &cfg(0.0, 1, 10),
                0
            ),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn saturation_ordering_on_the_noisy_path() {
        // The E15 headline at unit scale: offered λ = 0.2 on a noisy
        // path overloads sequential Decay (≈ 1070 rounds to drain 10
        // messages at this seed) but both pipelined workloads drain
        // well inside the 900-round cap (≈ 250 and ≈ 800 rounds).
        let g = generators::path(12);
        let channel = Channel::receiver(0.5).unwrap();
        let c = cfg(0.2, 10, 900);
        let decay = run_decay_traffic(&g, NodeId::new(0), channel, &c, 7).unwrap();
        let xin = run_xin_xia_traffic(&g, NodeId::new(0), channel, &c, 7).unwrap();
        let rlnc = run_rlnc_traffic(&g, NodeId::new(0), 8, channel, &c, 7).unwrap();
        assert!(decay.saturated, "sequential Decay must choke at λ=0.2");
        assert!(xin.drained(), "the Xin–Xia pipeline must sustain λ=0.2");
        assert!(rlnc.drained(), "batched RLNC must sustain λ=0.2");
        assert!(xin.conserved && rlnc.conserved && decay.conserved);
    }

    #[test]
    fn runs_are_shard_and_seed_deterministic() {
        let g = generators::grid(4, 5);
        let channel = Channel::receiver(0.3).unwrap();
        let run_with = |shards: usize| {
            let mut w = XinXiaTraffic::new(&g, NodeId::new(0)).unwrap();
            let c = TrafficConfig {
                shards,
                ..cfg(0.04, 6, 50_000)
            };
            run_traffic(&g, channel, &mut w, &c, 11).unwrap()
        };
        let reference = run_with(1);
        for shards in [2, 4] {
            assert_eq!(reference, run_with(shards), "shards = {shards}");
        }
    }
}
