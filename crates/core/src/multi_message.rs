//! Multi-message broadcast via random linear network coding
//! (paper §4.2, Lemmas 12–13).
//!
//! A fault-robust single-message schedule is lifted to `k` messages in
//! a black-box way: whenever the schedule gives a node a broadcast
//! slot, the node transmits a **uniformly random linear combination**
//! of everything it has received (the source holds all `k` messages
//! from the start). A node has all messages once it accumulates `k`
//! independent combinations (see [`radio_coding::rlnc`]).
//!
//! * [`DecayRlnc`] — Decay slots; `O(D log n + k log n + log² n)`
//!   rounds under faults, i.e. throughput `Ω(1/log n)` (Lemma 12);
//! * [`RobustFastbcRlnc`] — Robust FASTBC slots;
//!   `O(D + k log n log log n + log² n log log n)` rounds, throughput
//!   `Ω(1/(log n log log n))` (Lemma 13).
//!
//! Both behaviors are *oblivious* in the sense required by the paper's
//! black-box lemma: the broadcast pattern never depends on receptions
//! (a node with nothing to send simply emits silence in its slot).

use netgraph::{Graph, NodeId};
use radio_coding::rlnc::{CodedPacket, RlncNode};
use radio_coding::{Field, Gf256};
use radio_model::{Action, Channel, Ctx, LatencyProfile, NodeBehavior, Reception, Simulator};

use crate::decay::{default_phase_len, DecayNode};
use crate::robust_fastbc::{RobustFastbcParams, RobustFastbcSchedule};
use crate::{BroadcastRun, CoreError};

/// Outcome of a multi-message run: the broadcast result plus the
/// decoded payload check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiMessageRun {
    /// Rounds/stats of the run.
    pub run: BroadcastRun,
    /// Whether every node's decoded messages matched the source's
    /// (always checked when the run completes; `false` only flags a
    /// coding bug, never a channel fault).
    pub decoded_ok: bool,
}

fn random_messages(k: usize, payload_len: usize, seed: u64) -> Vec<Vec<Gf256>> {
    let mut rng = radio_model::fork_rng(seed, 0xC0DE);
    (0..k)
        .map(|_| (0..payload_len).map(|_| Gf256::random(&mut rng)).collect())
        .collect()
}

fn check_k(k: usize) -> Result<(), CoreError> {
    if k == 0 || k > 255 {
        return Err(CoreError::InvalidParameter {
            reason: format!("k = {k} outside supported range 1..=255 (GF(256) coefficients)"),
        });
    }
    Ok(())
}

/// The shared run body of every RLNC variant: run until every node's
/// decoder has full rank (the `can_decode`-driven [`NodeBehavior::decoded`]
/// hook records per-node decode rounds in the [`LatencyProfile`]), then
/// verify the decoded payloads against the source's.
fn run_rlnc_profiled<B>(
    graph: &Graph,
    fault: Channel,
    behaviors: Vec<B>,
    seed: u64,
    max_rounds: u64,
    messages: &[Vec<Gf256>],
    state: impl Fn(&B) -> &RlncNode<Gf256>,
) -> Result<(MultiMessageRun, LatencyProfile), CoreError>
where
    B: NodeBehavior<CodedPacket<Gf256>>,
{
    let mut sim = Simulator::new(graph, fault, behaviors, seed)?;
    let rounds = sim.run_until(max_rounds, |bs| bs.iter().all(|b| state(b).can_decode()));
    let stats = *sim.stats();
    let decoded_ok = rounds.is_some()
        && sim
            .behaviors()
            .iter()
            .all(|b| state(b).decode().map(|d| d == messages).unwrap_or(false));
    Ok((
        MultiMessageRun {
            run: BroadcastRun { rounds, stats },
            decoded_ok,
        },
        sim.latency_profile(),
    ))
}

/// Decay-slotted RLNC multi-message broadcast (Lemma 12).
///
/// # Example
///
/// ```
/// use netgraph::{generators, NodeId};
/// use noisy_radio_core::multi_message::DecayRlnc;
/// use radio_model::Channel;
///
/// let g = generators::path(8);
/// let out = DecayRlnc::default()
///     .run(&g, NodeId::new(0), 4, Channel::receiver(0.2).unwrap(), 7, 200_000)
///     .unwrap();
/// assert!(out.run.completed());
/// assert!(out.decoded_ok);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecayRlnc {
    /// Decay phase length; `None` derives `⌈log₂ n⌉ + 1`.
    pub phase_len: Option<u32>,
    /// Payload symbols per message (0 = track coefficients only,
    /// fastest; > 0 = carry and verify real payloads).
    pub payload_len: usize,
}

impl DecayRlnc {
    /// Runs `k`-message broadcast from `source`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] if `k` is outside `1..=255` or
    /// the source is out of bounds; [`CoreError::Model`] from the
    /// simulator.
    pub fn run(
        &self,
        graph: &Graph,
        source: NodeId,
        k: usize,
        fault: Channel,
        seed: u64,
        max_rounds: u64,
    ) -> Result<MultiMessageRun, CoreError> {
        Ok(self
            .run_profiled(graph, source, k, fault, seed, max_rounds)?
            .0)
    }

    /// As [`DecayRlnc::run`], additionally returning the per-node
    /// [`LatencyProfile`]: `first_packet` is the round a node first
    /// heard *any* combination, `decode` the round its decoder reached
    /// full rank `k` (the `can_decode`-driven decode latency the E6/E7
    /// tables report).
    ///
    /// # Errors
    ///
    /// As [`DecayRlnc::run`].
    pub fn run_profiled(
        &self,
        graph: &Graph,
        source: NodeId,
        k: usize,
        fault: Channel,
        seed: u64,
        max_rounds: u64,
    ) -> Result<(MultiMessageRun, LatencyProfile), CoreError> {
        check_k(k)?;
        let n = graph.node_count();
        if source.index() >= n {
            return Err(CoreError::InvalidParameter {
                reason: format!("source {source} out of bounds for {n} nodes"),
            });
        }
        let phase_len = self.phase_len.unwrap_or_else(|| default_phase_len(n));
        let messages = random_messages(k, self.payload_len, seed);
        let behaviors: Vec<RlncDecayNode> = (0..n)
            .map(|i| RlncDecayNode {
                state: if i == source.index() {
                    RlncNode::source(k, self.payload_len, &messages)
                } else {
                    RlncNode::new(k, self.payload_len)
                },
                phase_len,
            })
            .collect();
        run_rlnc_profiled(graph, fault, behaviors, seed, max_rounds, &messages, |b| {
            &b.state
        })
    }
}

impl DecayRlnc {
    /// Multi-source gossip: message `i` starts at `owners[i]`
    /// (`k = owners.len()`), everyone gossips random combinations
    /// under Decay timing, and the run completes when every node can
    /// decode all `k` messages.
    ///
    /// This generalizes Lemma 12 beyond the paper's single-source
    /// `k`-broadcast: RLNC is source-oblivious (Haeupler's projection
    /// analysis never uses a common source), so the same schedule
    /// solves all-to-all gossip at the same throughput.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] on bad `k` or an out-of-bounds
    /// owner; [`CoreError::Model`] from the simulator.
    pub fn run_gossip(
        &self,
        graph: &Graph,
        owners: &[NodeId],
        fault: Channel,
        seed: u64,
        max_rounds: u64,
    ) -> Result<MultiMessageRun, CoreError> {
        let k = owners.len();
        check_k(k)?;
        let n = graph.node_count();
        if let Some(&bad) = owners.iter().find(|o| o.index() >= n) {
            return Err(CoreError::InvalidParameter {
                reason: format!("owner {bad} out of bounds for {n} nodes"),
            });
        }
        let phase_len = self.phase_len.unwrap_or_else(|| default_phase_len(n));
        let messages = random_messages(k, self.payload_len, seed);
        let mut behaviors: Vec<RlncDecayNode> = (0..n)
            .map(|_| RlncDecayNode {
                state: RlncNode::new(k, self.payload_len),
                phase_len,
            })
            .collect();
        for (i, &owner) in owners.iter().enumerate() {
            behaviors[owner.index()]
                .state
                .absorb(radio_coding::rlnc::CodedPacket::unit(
                    k,
                    i,
                    messages[i].clone(),
                ));
        }
        Ok(
            run_rlnc_profiled(graph, fault, behaviors, seed, max_rounds, &messages, |b| {
                &b.state
            })?
            .0,
        )
    }
}

/// Per-node behavior: Decay timing, RLNC payload.
#[derive(Debug, Clone)]
struct RlncDecayNode {
    state: RlncNode<Gf256>,
    phase_len: u32,
}

impl NodeBehavior<CodedPacket<Gf256>> for RlncDecayNode {
    fn act(&mut self, ctx: &mut Ctx<'_>) -> Action<CodedPacket<Gf256>> {
        if DecayNode::draw_broadcast(self.phase_len, ctx.round, ctx.rng) {
            match self.state.random_combination(ctx.rng) {
                Some(packet) => Action::Broadcast(packet),
                None => Action::Listen,
            }
        } else {
            Action::Listen
        }
    }

    fn receive(&mut self, _ctx: &mut Ctx<'_>, rx: Reception<CodedPacket<Gf256>>) {
        if let Reception::Packet(packet) = rx {
            self.state.absorb(packet);
        }
    }

    fn decoded(&self) -> bool {
        self.state.can_decode()
    }
}

/// Robust-FASTBC-slotted RLNC multi-message broadcast (Lemma 13).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RobustFastbcRlnc {
    /// Robust FASTBC parameters (block size, window, phase length).
    pub params: RobustFastbcParams,
    /// Payload symbols per message (see [`DecayRlnc::payload_len`]).
    pub payload_len: usize,
}

impl RobustFastbcRlnc {
    /// Runs `k`-message broadcast from `source`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] on bad `k`;
    /// [`CoreError::Gbst`] if the GBST cannot be built;
    /// [`CoreError::Model`] from the simulator.
    pub fn run(
        &self,
        graph: &Graph,
        source: NodeId,
        k: usize,
        fault: Channel,
        seed: u64,
        max_rounds: u64,
    ) -> Result<MultiMessageRun, CoreError> {
        Ok(self
            .run_profiled(graph, source, k, fault, seed, max_rounds)?
            .0)
    }

    /// As [`RobustFastbcRlnc::run`], additionally returning the
    /// per-node [`LatencyProfile`] (see [`DecayRlnc::run_profiled`]).
    ///
    /// # Errors
    ///
    /// As [`RobustFastbcRlnc::run`].
    pub fn run_profiled(
        &self,
        graph: &Graph,
        source: NodeId,
        k: usize,
        fault: Channel,
        seed: u64,
        max_rounds: u64,
    ) -> Result<(MultiMessageRun, LatencyProfile), CoreError> {
        check_k(k)?;
        let sched = RobustFastbcSchedule::with_params(graph, source, self.params)?;
        let gbst = sched.gbst();
        let n = graph.node_count();
        let messages = random_messages(k, self.payload_len, seed);
        let phase_len = sched.phase_len();
        let behaviors: Vec<RlncRobustNode> = (0..n)
            .map(|i| {
                let v = NodeId::from_index(i);
                RlncRobustNode {
                    state: if v == source {
                        RlncNode::source(k, self.payload_len, &messages)
                    } else {
                        RlncNode::new(k, self.payload_len)
                    },
                    phase_len,
                    slot: gbst.is_fast(v).then(|| BlockSlot {
                        level: gbst.level(v),
                        rank: gbst.rank(v),
                        block_size: sched.block_size(),
                        window: sched.window_multiplier(),
                        modulus: sched.modulus(),
                    }),
                }
            })
            .collect();
        run_rlnc_profiled(graph, fault, behaviors, seed, max_rounds, &messages, |b| {
            &b.state
        })
    }
}

/// The block-pipelined slot predicate of Robust FASTBC, carried
/// per node (identical to §4.1's formal schedule).
#[derive(Debug, Clone, Copy)]
struct BlockSlot {
    level: u32,
    rank: u32,
    block_size: u32,
    window: u32,
    modulus: u64,
}

impl BlockSlot {
    fn matches(&self, round: u64) -> bool {
        let t = round / 2;
        let superround = t / u64::from(self.window * self.block_size);
        let block = i64::from(self.level / self.block_size);
        let r = i64::from(self.rank);
        let m = self.modulus as i64;
        let active = (superround as i64 - (block - 6 * r)).rem_euclid(m) == 0;
        active && u64::from(self.level) % 3 == round % 3
    }
}

/// Per-node behavior: Robust FASTBC timing, RLNC payload.
#[derive(Debug, Clone)]
struct RlncRobustNode {
    state: RlncNode<Gf256>,
    phase_len: u32,
    slot: Option<BlockSlot>,
}

impl NodeBehavior<CodedPacket<Gf256>> for RlncRobustNode {
    fn act(&mut self, ctx: &mut Ctx<'_>) -> Action<CodedPacket<Gf256>> {
        let wants_slot = if ctx.round.is_multiple_of(2) {
            matches!(self.slot, Some(slot) if slot.matches(ctx.round))
        } else {
            let t = (ctx.round - 1) / 2;
            DecayNode::draw_broadcast(self.phase_len, t, ctx.rng)
        };
        if wants_slot {
            match self.state.random_combination(ctx.rng) {
                Some(packet) => Action::Broadcast(packet),
                None => Action::Listen,
            }
        } else {
            Action::Listen
        }
    }

    fn receive(&mut self, _ctx: &mut Ctx<'_>, rx: Reception<CodedPacket<Gf256>>) {
        if let Reception::Packet(packet) = rx {
            self.state.absorb(packet);
        }
    }

    fn decoded(&self) -> bool {
        self.state.can_decode()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators;

    #[test]
    fn decay_rlnc_small_path() {
        let g = generators::path(6);
        let out = DecayRlnc {
            phase_len: None,
            payload_len: 2,
        }
        .run(&g, NodeId::new(0), 3, Channel::faultless(), 1, 100_000)
        .unwrap();
        assert!(out.run.completed());
        assert!(out.decoded_ok);
    }

    #[test]
    fn decay_rlnc_star_with_receiver_faults() {
        let g = generators::star(32);
        let out = DecayRlnc {
            phase_len: None,
            payload_len: 1,
        }
        .run(
            &g,
            NodeId::new(0),
            16,
            Channel::receiver(0.5).unwrap(),
            3,
            1_000_000,
        )
        .unwrap();
        assert!(
            out.run.completed(),
            "Lemma 12: coding throughput Ω(1/log n) on the star"
        );
        assert!(out.decoded_ok);
    }

    #[test]
    fn decay_rlnc_gnp_sender_faults() {
        let g = generators::gnp_connected(48, 0.1, 5).unwrap();
        let out = DecayRlnc {
            phase_len: None,
            payload_len: 0,
        }
        .run(
            &g,
            NodeId::new(0),
            8,
            Channel::sender(0.3).unwrap(),
            7,
            1_000_000,
        )
        .unwrap();
        assert!(out.run.completed());
        assert!(
            out.decoded_ok,
            "payload-free runs still decode (empty payloads)"
        );
    }

    #[test]
    fn robust_fastbc_rlnc_path() {
        let g = generators::path(48);
        let out = RobustFastbcRlnc {
            params: Default::default(),
            payload_len: 1,
        }
        .run(
            &g,
            NodeId::new(0),
            6,
            Channel::receiver(0.3).unwrap(),
            11,
            2_000_000,
        )
        .unwrap();
        assert!(
            out.run.completed(),
            "Lemma 13 variant must complete under faults"
        );
        assert!(out.decoded_ok);
    }

    #[test]
    fn robust_fastbc_rlnc_tree_faultless() {
        let g = generators::balanced_tree(2, 5).unwrap();
        let out = RobustFastbcRlnc {
            params: Default::default(),
            payload_len: 2,
        }
        .run(&g, NodeId::new(0), 5, Channel::faultless(), 13, 2_000_000)
        .unwrap();
        assert!(out.run.completed());
        assert!(out.decoded_ok);
    }

    #[test]
    fn k_bounds_enforced() {
        let g = generators::path(4);
        for k in [0usize, 256] {
            assert!(matches!(
                DecayRlnc::default().run(&g, NodeId::new(0), k, Channel::faultless(), 0, 10),
                Err(CoreError::InvalidParameter { .. })
            ));
        }
    }

    #[test]
    fn bad_source_rejected() {
        let g = generators::path(4);
        assert!(matches!(
            DecayRlnc::default().run(&g, NodeId::new(9), 2, Channel::faultless(), 0, 10),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn gossip_from_scattered_sources_completes() {
        let g = generators::grid(6, 6);
        // Messages owned by the four corners and the center.
        let owners = vec![
            NodeId::new(0),
            NodeId::new(5),
            NodeId::new(30),
            NodeId::new(35),
            NodeId::new(14),
        ];
        let out = DecayRlnc {
            phase_len: None,
            payload_len: 2,
        }
        .run_gossip(&g, &owners, Channel::receiver(0.3).unwrap(), 5, 1_000_000)
        .unwrap();
        assert!(out.run.completed());
        assert!(out.decoded_ok);
    }

    #[test]
    fn gossip_with_repeated_owner_is_single_source_broadcast() {
        let g = generators::path(12);
        let owners = vec![NodeId::new(0); 4];
        let out = DecayRlnc {
            phase_len: None,
            payload_len: 1,
        }
        .run_gossip(&g, &owners, Channel::faultless(), 7, 1_000_000)
        .unwrap();
        assert!(out.run.completed());
        assert!(out.decoded_ok);
    }

    #[test]
    fn gossip_rejects_bad_owner() {
        let g = generators::path(4);
        assert!(matches!(
            DecayRlnc::default().run_gossip(&g, &[NodeId::new(9)], Channel::faultless(), 0, 10),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn k_equals_one_decode_matches_first_packet() {
        // k = 1 edge case: one nonzero combination is the message, so
        // every non-source node's decode completes the round it first
        // hears a packet (random_combination never emits the zero
        // vector), and the source decodes at construction.
        let g = generators::path(8);
        let (out, profile) = DecayRlnc {
            phase_len: None,
            payload_len: 1,
        }
        .run_profiled(
            &g,
            NodeId::new(0),
            1,
            Channel::receiver(0.4).unwrap(),
            3,
            1_000_000,
        )
        .unwrap();
        assert!(out.run.completed() && out.decoded_ok);
        assert_eq!(profile.decode_complete(NodeId::new(0)), Some(0));
        for i in 1..8u32 {
            let v = NodeId::new(i);
            assert_eq!(
                profile.decode_complete(v),
                profile.first_packet(v),
                "k = 1 decode must land with the first packet at {v}"
            );
        }
    }

    #[test]
    fn k_larger_than_n_completes_with_full_decode_profile() {
        // k > n edge case: more messages than nodes; rank must still
        // reach k everywhere and every decode round is recorded no
        // earlier than the node's first packet.
        let g = generators::path(4);
        let (out, profile) = DecayRlnc {
            phase_len: None,
            payload_len: 0,
        }
        .run_profiled(&g, NodeId::new(0), 8, Channel::faultless(), 5, 1_000_000)
        .unwrap();
        assert!(out.run.completed() && out.decoded_ok);
        assert_eq!(profile.decoded_count(), 4);
        for i in 1..4u32 {
            let v = NodeId::new(i);
            let first = profile.first_packet(v).expect("served");
            let decode = profile.decode_complete(v).expect("decoded");
            assert!(decode >= first, "rank k needs ≥ k receptions at {v}");
            assert!(decode < out.run.rounds_used());
        }
    }

    #[test]
    fn decode_rounds_are_monotone_in_k() {
        // The `can_decode`-driven decode hook: accumulating rank k
        // takes longer for larger k, so the mean decode latency is
        // nondecreasing in k (averaged over seeds to tame variance).
        let g = generators::path(8);
        let mean_decode = |k: usize| {
            let (mut total, mut count) = (0u64, 0u64);
            for seed in 0..4 {
                let (out, profile) = DecayRlnc {
                    phase_len: None,
                    payload_len: 0,
                }
                .run_profiled(
                    &g,
                    NodeId::new(0),
                    k,
                    Channel::receiver(0.3).unwrap(),
                    seed,
                    1_000_000,
                )
                .unwrap();
                assert!(out.run.completed(), "k = {k} seed {seed}");
                let lats = profile.decode_latencies();
                total += lats.iter().sum::<u64>();
                count += lats.len() as u64;
            }
            total as f64 / count as f64
        };
        let (m2, m8, m32) = (mean_decode(2), mean_decode(8), mean_decode(32));
        assert!(
            m2 <= m8 && m8 <= m32,
            "decode latency must grow with k: {m2} → {m8} → {m32}"
        );
        assert!(m2 < m32, "k = 32 must be strictly slower than k = 2");
    }

    #[test]
    fn robust_fastbc_rlnc_profiled_populates_decode_rounds() {
        let g = generators::path(24);
        let (out, profile) = RobustFastbcRlnc {
            params: Default::default(),
            payload_len: 0,
        }
        .run_profiled(
            &g,
            NodeId::new(0),
            4,
            Channel::receiver(0.3).unwrap(),
            7,
            2_000_000,
        )
        .unwrap();
        assert!(out.run.completed());
        assert_eq!(profile.decoded_count(), 24);
        assert!(profile
            .decode_latencies()
            .iter()
            .all(|&l| l <= out.run.rounds_used()));
    }

    #[test]
    fn rounds_scale_roughly_linearly_in_k() {
        // Lemma 12 shape: k log n + D log n; doubling k from a
        // k-dominant regime should not much more than double rounds.
        let g = generators::star(64);
        let run = |k: usize| {
            DecayRlnc {
                phase_len: None,
                payload_len: 0,
            }
            .run(
                &g,
                NodeId::new(0),
                k,
                Channel::receiver(0.5).unwrap(),
                21,
                4_000_000,
            )
            .unwrap()
            .run
            .rounds_used()
        };
        let r32 = run(32);
        let r64 = run(64);
        let ratio = r64 as f64 / r32 as f64;
        assert!(
            (1.2..3.4).contains(&ratio),
            "rounds should scale ~linearly in k: {r32} -> {r64} (ratio {ratio})"
        );
    }
}
