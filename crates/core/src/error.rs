//! Error type for configuring and running broadcast algorithms.

use std::error::Error;
use std::fmt;

/// Errors from configuring or running the broadcast algorithms.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The underlying simulator rejected the configuration.
    Model(radio_model::ModelError),
    /// GBST construction failed (disconnected graph, bad source).
    Gbst(gbst::GbstError),
    /// A coding operation failed.
    Coding(radio_coding::CodingError),
    /// An algorithm parameter is out of its valid range.
    InvalidParameter {
        /// Which parameter and why.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Model(e) => write!(f, "simulator error: {e}"),
            CoreError::Gbst(e) => write!(f, "GBST error: {e}"),
            CoreError::Coding(e) => write!(f, "coding error: {e}"),
            CoreError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Model(e) => Some(e),
            CoreError::Gbst(e) => Some(e),
            CoreError::Coding(e) => Some(e),
            CoreError::InvalidParameter { .. } => None,
        }
    }
}

impl From<radio_model::ModelError> for CoreError {
    fn from(e: radio_model::ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl From<gbst::GbstError> for CoreError {
    fn from(e: gbst::GbstError) -> Self {
        CoreError::Gbst(e)
    }
}

impl From<radio_coding::CodingError> for CoreError {
    fn from(e: radio_coding::CodingError) -> Self {
        CoreError::Coding(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::from(radio_model::ModelError::InvalidFaultProbability { p: 2.0 });
        assert!(e.to_string().contains("simulator error"));
        assert!(Error::source(&e).is_some());
        let e = CoreError::InvalidParameter {
            reason: "k too large".into(),
        };
        assert!(e.to_string().contains("k too large"));
        assert!(Error::source(&e).is_none());
    }
}
