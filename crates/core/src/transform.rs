//! Faultless → faulty schedule transformations (paper §5.2).
//!
//! * **Lemma 25** — any faultless *routing* schedule of throughput `τ`
//!   becomes an adaptive routing schedule of throughput `τ(1−p)` under
//!   **sender faults**: each base round is dilated into a meta-round of
//!   `⌈x(1+η)/(1−p)⌉` rounds; a node that broadcast message `m_i` now
//!   carries a group of `x` messages `m_{i,1..x}` and repeats each
//!   until a non-faulty transmission, then goes silent. Collisions are
//!   a subset of the base schedule's, so the base delivery pattern is
//!   preserved whenever every sender drains its queue — which fails
//!   with probability `exp(−Ω(xη²))` per meta-round.
//! * **Lemma 26** — any faultless *coding* schedule of throughput `τ`
//!   becomes a coding schedule of throughput `τ(1−p)` under **sender
//!   or receiver faults**: the node Reed–Solomon-encodes the `x` coded
//!   packets it would have sent (one per message group) into
//!   `⌈x/((1−p)(1−η))⌉` packets and broadcasts them through the
//!   meta-round; every receiver that the base round served needs *any*
//!   `x` of them.
//!
//! These transformations are why sender faults change almost nothing
//! (Theorems 27–28: the faultless gaps of Alon et al. carry over),
//! in sharp contrast to receiver faults (Theorem 24).

use netgraph::{Graph, NodeId};
use radio_model::{fork_rng, BitMatrix, Channel};
use rand::Rng;

use crate::CoreError;

/// A faultless routing schedule given explicitly: `actions[r][v]` is
/// the message node `v` broadcasts in round `r` (`None` = silent).
///
/// Use [`BaseSchedule::validate_faultless`] to check the schedule
/// actually broadcasts every message to every node in the faultless
/// model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaseSchedule {
    /// Number of messages `k`.
    pub k: usize,
    /// Per-round, per-node actions.
    pub actions: Vec<Vec<Option<usize>>>,
}

impl BaseSchedule {
    /// The sequential star schedule: the source (node 0) broadcasts
    /// message `i` in round `i`. Faultless throughput 1.
    pub fn star(leaves: usize, k: usize) -> Self {
        let n = leaves + 1;
        let actions = (0..k)
            .map(|i| {
                let mut row = vec![None; n];
                row[0] = Some(i);
                row
            })
            .collect();
        BaseSchedule { k, actions }
    }

    /// The sequential single-link schedule (a star with one leaf).
    pub fn single_link(k: usize) -> Self {
        Self::star(1, k)
    }

    /// The classic pipelined path schedule: node `j` broadcasts
    /// message `m` in round `3m + j`. Messages march down the path
    /// three rounds apart, so broadcasters are ≥ 3 nodes apart and
    /// never collide. Faultless throughput 1/3.
    pub fn path_pipelined(n: usize, k: usize) -> Self {
        let total = if n == 0 { 0 } else { 3 * k + n };
        let mut actions = vec![vec![None; n]; total];
        for m in 0..k {
            for j in 0..n {
                let r = 3 * m + j;
                if r < total {
                    actions[r][j] = Some(m);
                }
            }
        }
        BaseSchedule { k, actions }
    }

    /// Number of rounds in the schedule.
    pub fn round_count(&self) -> usize {
        self.actions.len()
    }

    /// Simulates the schedule in the faultless model and reports
    /// whether it broadcasts all `k` messages from `source` to every
    /// node. Also returns the delivery pattern
    /// `(round, sender, receiver)` used by the coding transform.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] if action rows have the wrong
    /// width.
    pub fn validate_faultless(
        &self,
        graph: &Graph,
        source: NodeId,
    ) -> Result<FaultlessTrace, CoreError> {
        let n = graph.node_count();
        let mut knowledge = BitMatrix::new(n, self.k);
        for m in 0..self.k {
            knowledge.set(source.index(), m);
        }
        let mut deliveries = Vec::new();
        for (r, row) in self.actions.iter().enumerate() {
            if row.len() != n {
                return Err(CoreError::InvalidParameter {
                    reason: format!("round {r} has {} actions for {n} nodes", row.len()),
                });
            }
            // Routing semantics: only known messages are sent.
            let sending: Vec<Option<usize>> = row
                .iter()
                .enumerate()
                .map(|(v, a)| a.filter(|&m| knowledge.get(v, m)))
                .collect();
            for v in 0..n {
                if sending[v].is_some() {
                    continue;
                }
                let mut tx = None;
                let mut hits = 0;
                for &u in graph.neighbors(NodeId::from_index(v)) {
                    if sending[u.index()].is_some() {
                        hits += 1;
                        if hits > 1 {
                            break;
                        }
                        tx = Some(u);
                    }
                }
                if hits == 1 {
                    let u = tx.expect("hits == 1");
                    let m = sending[u.index()].expect("sender has message");
                    // Only fresh deliveries matter downstream: a node
                    // that re-hears a message it already has derives
                    // nothing new from it (the Lemma 26 induction only
                    // re-serves informative receptions).
                    if knowledge.set(v, m) {
                        deliveries.push((r as u64, u, NodeId::from_index(v)));
                    }
                }
            }
        }
        Ok(FaultlessTrace {
            complete: knowledge.all_ones(),
            deliveries,
        })
    }
}

/// Result of a faultless validation run of a [`BaseSchedule`].
#[derive(Debug, Clone)]
pub struct FaultlessTrace {
    /// Whether every node ends with every message.
    pub complete: bool,
    /// All `(round, sender, receiver)` deliveries.
    pub deliveries: Vec<(u64, NodeId, NodeId)>,
}

/// Result of running a transformed schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransformRun {
    /// Rounds the transformed schedule used.
    pub total_rounds: u64,
    /// Rounds the base schedule used.
    pub base_rounds: u64,
    /// Total messages carried (`k · x`).
    pub messages: u64,
    /// Whether every node finished with every message (routing) /
    /// every required reception quota was met (coding).
    pub success: bool,
}

impl TransformRun {
    /// Measured throughput `messages / total_rounds`.
    pub fn throughput(&self) -> f64 {
        self.messages as f64 / self.total_rounds as f64
    }

    /// The base schedule's throughput `k / base_rounds`.
    pub fn base_throughput(&self, k: u64) -> f64 {
        k as f64 / self.base_rounds as f64
    }
}

/// The Lemma 25 transformation (routing, sender faults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SenderFaultRoutingTransform {
    /// Group size `x` (messages per base message slot). The paper
    /// picks `x = Ω(log(n·k)/η²)`; anything large enough to keep the
    /// per-meta-round failure below `1/(nk)^c` works.
    pub group_size: usize,
    /// Slack `η > 0` in the meta-round length.
    pub eta: f64,
}

impl SenderFaultRoutingTransform {
    /// Meta-round length `⌈x(1+η)/(1−p)⌉`.
    pub fn meta_len(&self, p: f64) -> u64 {
        ((self.group_size as f64) * (1.0 + self.eta) / (1.0 - p)).ceil() as u64
    }

    /// Runs the transformed schedule on `graph` under **sender faults**
    /// with probability `p`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for a bad `x`/`η`/`p` or an
    /// invalid base schedule.
    pub fn run(
        &self,
        graph: &Graph,
        base: &BaseSchedule,
        source: NodeId,
        p: f64,
        seed: u64,
    ) -> Result<TransformRun, CoreError> {
        if self.group_size == 0 {
            return Err(CoreError::InvalidParameter {
                reason: "group size must be ≥ 1".into(),
            });
        }
        if !(0.0..1.0).contains(&p) {
            return Err(CoreError::InvalidParameter {
                reason: format!("fault probability {p} outside [0, 1)"),
            });
        }
        if !(self.eta > 0.0) {
            return Err(CoreError::InvalidParameter {
                reason: "η must be > 0".into(),
            });
        }
        let n = graph.node_count();
        let x = self.group_size;
        let k_total = base.k * x;
        let meta_len = self.meta_len(p);
        let mut knowledge = BitMatrix::new(n, k_total);
        for m in 0..k_total {
            knowledge.set(source.index(), m);
        }
        let mut rng = fork_rng(seed, 0x25);
        let mut total_rounds = 0u64;

        // Per meta-round state: each base-broadcaster owns a queue of
        // the x messages of its group that it currently knows.
        for row in &base.actions {
            if row.len() != n {
                return Err(CoreError::InvalidParameter {
                    reason: "base schedule width mismatch".into(),
                });
            }
            let mut queues: Vec<Vec<usize>> = row
                .iter()
                .enumerate()
                .map(|(v, a)| match a {
                    Some(i) => (0..x)
                        .map(|j| i * x + j)
                        .filter(|&msg| knowledge.get(v, msg))
                        .rev() // pop() takes the lowest last -> reverse
                        .collect(),
                    None => Vec::new(),
                })
                .collect();
            for _ in 0..meta_len {
                total_rounds += 1;
                // Broadcasters: queue non-empty. One sender-fault draw each.
                let sending: Vec<Option<usize>> =
                    queues.iter().map(|q| q.last().copied()).collect();
                let faulted: Vec<bool> = sending
                    .iter()
                    .map(|s| s.is_some() && rng.gen_bool(p))
                    .collect();
                // Deliveries.
                for v in 0..n {
                    if sending[v].is_some() {
                        continue;
                    }
                    let mut tx = None;
                    let mut hits = 0;
                    for &u in graph.neighbors(NodeId::from_index(v)) {
                        if sending[u.index()].is_some() {
                            hits += 1;
                            if hits > 1 {
                                break;
                            }
                            tx = Some(u);
                        }
                    }
                    if hits == 1 {
                        let u = tx.expect("hits == 1");
                        if !faulted[u.index()] {
                            let m = sending[u.index()].expect("sender has message");
                            knowledge.set(v, m);
                        }
                    }
                }
                // Queue advance: a non-faulted transmission succeeds.
                for v in 0..n {
                    if sending[v].is_some() && !faulted[v] {
                        queues[v].pop();
                    }
                }
            }
        }
        Ok(TransformRun {
            total_rounds,
            base_rounds: base.round_count() as u64,
            messages: k_total as u64,
            success: knowledge.all_ones(),
        })
    }
}

/// The Lemma 26 transformation (coding, sender **or** receiver
/// faults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodingFaultTransform {
    /// Group size `x`.
    pub group_size: usize,
    /// Slack `η ∈ (0, 1)`.
    pub eta: f64,
}

impl CodingFaultTransform {
    /// Meta-round length `⌈x/((1−p)(1−η))⌉`.
    pub fn meta_len(&self, p: f64) -> u64 {
        ((self.group_size as f64) / ((1.0 - p) * (1.0 - self.eta))).ceil() as u64
    }

    /// Runs the transformed coding schedule. The base schedule's
    /// broadcast pattern and faultless delivery pattern are taken from
    /// `base`/`trace`; in every meta-round each base broadcaster sends
    /// its `meta_len` Reed–Solomon packets, and the run succeeds iff
    /// every base delivery `(r, u → v)` sees at least `x` of `u`'s
    /// packets arrive at `v` in meta-round `r` (then `v` reconstructs
    /// everything it would have known faultlessly — the paper's
    /// induction).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] on bad parameters.
    pub fn run(
        &self,
        graph: &Graph,
        base: &BaseSchedule,
        trace: &FaultlessTrace,
        fault: Channel,
        seed: u64,
    ) -> Result<TransformRun, CoreError> {
        if self.group_size == 0 {
            return Err(CoreError::InvalidParameter {
                reason: "group size must be ≥ 1".into(),
            });
        }
        if !(self.eta > 0.0 && self.eta < 1.0) {
            return Err(CoreError::InvalidParameter {
                reason: "η must be in (0, 1)".into(),
            });
        }
        let p = fault.fault_probability();
        let n = graph.node_count();
        let x = self.group_size as u64;
        let meta_len = self.meta_len(p);
        let mut rng = fork_rng(seed, 0x26);

        // Count, per base delivery (r, u, v), how many of u's packets
        // v receives in meta-round r.
        let mut required: std::collections::HashMap<(u64, u32, u32), u64> = trace
            .deliveries
            .iter()
            .map(|&(r, u, v)| ((r, u.raw(), v.raw()), 0))
            .collect();
        let mut total_rounds = 0u64;

        for (r, row) in base.actions.iter().enumerate() {
            if row.len() != n {
                return Err(CoreError::InvalidParameter {
                    reason: "base schedule width mismatch".into(),
                });
            }
            let sending: Vec<bool> = row.iter().map(Option::is_some).collect();
            for _ in 0..meta_len {
                total_rounds += 1;
                let faulted: Vec<bool> = sending
                    .iter()
                    .map(|&s| s && fault.is_sender() && rng.gen_bool(p))
                    .collect();
                for v in 0..n {
                    if sending[v] {
                        continue;
                    }
                    let mut tx = None;
                    let mut hits = 0;
                    for &u in graph.neighbors(NodeId::from_index(v)) {
                        if sending[u.index()] {
                            hits += 1;
                            if hits > 1 {
                                break;
                            }
                            tx = Some(u);
                        }
                    }
                    if hits != 1 {
                        continue;
                    }
                    let u = tx.expect("hits == 1");
                    if faulted[u.index()] {
                        continue;
                    }
                    if (fault.is_receiver() || fault.is_erasure()) && rng.gen_bool(p) {
                        continue;
                    }
                    if let Some(count) = required.get_mut(&(r as u64, u.raw(), v as u32)) {
                        *count += 1;
                    }
                }
            }
        }
        let success = required.values().all(|&c| c >= x);
        Ok(TransformRun {
            total_rounds,
            base_rounds: base.round_count() as u64,
            messages: base.k as u64 * x,
            success,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators;

    #[test]
    fn base_star_schedule_validates() {
        let g = generators::star(8);
        let base = BaseSchedule::star(8, 5);
        let trace = base.validate_faultless(&g, NodeId::new(0)).unwrap();
        assert!(trace.complete);
        assert_eq!(trace.deliveries.len(), 5 * 8);
    }

    #[test]
    fn base_path_pipeline_validates() {
        let g = generators::path(10);
        let base = BaseSchedule::path_pipelined(10, 7);
        let trace = base.validate_faultless(&g, NodeId::new(0)).unwrap();
        assert!(
            trace.complete,
            "pipelined path schedule must deliver everything"
        );
        // Each of 7 messages crosses 9 edges.
        assert_eq!(trace.deliveries.len(), 7 * 9);
    }

    #[test]
    fn routing_transform_star_succeeds_with_sender_faults() {
        let g = generators::star(16);
        let base = BaseSchedule::star(16, 4);
        let t = SenderFaultRoutingTransform {
            group_size: 64,
            eta: 0.5,
        };
        let run = t.run(&g, &base, NodeId::new(0), 0.4, 3).unwrap();
        assert!(run.success, "transform must deliver all grouped messages");
        // Throughput ratio ≈ (1-p)/(1+η) = 0.6/1.5 = 0.4 of base (=1).
        let ratio = run.throughput() / run.base_throughput(4);
        assert!((0.3..0.55).contains(&ratio), "throughput ratio {ratio}");
    }

    #[test]
    fn routing_transform_path_pipeline_succeeds() {
        let g = generators::path(8);
        let base = BaseSchedule::path_pipelined(8, 3);
        let t = SenderFaultRoutingTransform {
            group_size: 96,
            eta: 0.5,
        };
        let run = t.run(&g, &base, NodeId::new(0), 0.3, 5).unwrap();
        assert!(run.success);
        // Base throughput 3/(3·3+8) ≈ 0.18; transformed ≈ ·(1-p)/(1+η).
        let ratio = run.throughput() / run.base_throughput(3);
        assert!((0.3..0.6).contains(&ratio), "throughput ratio {ratio}");
    }

    #[test]
    fn routing_transform_with_tiny_group_can_fail() {
        // x = 1, η small: a single fault during the one-slot meta
        // round leaves the message undelivered for that base slot;
        // with many messages failure is near-certain.
        let g = generators::star(4);
        let base = BaseSchedule::star(4, 32);
        let t = SenderFaultRoutingTransform {
            group_size: 1,
            eta: 0.01,
        };
        let run = t.run(&g, &base, NodeId::new(0), 0.5, 7).unwrap();
        assert!(!run.success, "x=1 under p=0.5 should drop messages");
    }

    #[test]
    fn coding_transform_succeeds_under_both_fault_kinds() {
        let g = generators::path(6);
        let base = BaseSchedule::path_pipelined(6, 3);
        let trace = base.validate_faultless(&g, NodeId::new(0)).unwrap();
        let t = CodingFaultTransform {
            group_size: 64,
            eta: 0.3,
        };
        for fault in [
            Channel::sender(0.4).unwrap(),
            Channel::receiver(0.4).unwrap(),
        ] {
            let run = t.run(&g, &base, &trace, fault, 9).unwrap();
            assert!(run.success, "coding transform must succeed under {fault}");
            let ratio = run.throughput() / run.base_throughput(3);
            // (1-p)(1-η) = 0.42 of base throughput.
            assert!(
                (0.3..0.6).contains(&ratio),
                "{fault}: throughput ratio {ratio}"
            );
        }
    }

    #[test]
    fn coding_transform_with_no_slack_fails_sometimes() {
        let g = generators::single_link();
        let base = BaseSchedule::single_link(16);
        let trace = base.validate_faultless(&g, NodeId::new(0)).unwrap();
        // meta_len = x exactly (η→0 not allowed; emulate by tiny η and
        // p = 0.5): every packet must arrive, which fails w.h.p.
        let t = CodingFaultTransform {
            group_size: 32,
            eta: 1e-9,
        };
        let run = t
            .run(&g, &base, &trace, Channel::receiver(0.5).unwrap(), 11)
            .unwrap();
        assert!(!run.success);
    }

    #[test]
    fn parameter_validation() {
        let g = generators::single_link();
        let base = BaseSchedule::single_link(2);
        let trace = base.validate_faultless(&g, NodeId::new(0)).unwrap();
        assert!(SenderFaultRoutingTransform {
            group_size: 0,
            eta: 0.5
        }
        .run(&g, &base, NodeId::new(0), 0.5, 0)
        .is_err());
        assert!(SenderFaultRoutingTransform {
            group_size: 4,
            eta: 0.0
        }
        .run(&g, &base, NodeId::new(0), 0.5, 0)
        .is_err());
        assert!(SenderFaultRoutingTransform {
            group_size: 4,
            eta: 0.5
        }
        .run(&g, &base, NodeId::new(0), 1.0, 0)
        .is_err());
        assert!(CodingFaultTransform {
            group_size: 0,
            eta: 0.5
        }
        .run(&g, &base, &trace, Channel::faultless(), 0)
        .is_err());
        assert!(CodingFaultTransform {
            group_size: 4,
            eta: 1.5
        }
        .run(&g, &base, &trace, Channel::faultless(), 0)
        .is_err());
    }

    #[test]
    fn meta_len_formulas() {
        let t = SenderFaultRoutingTransform {
            group_size: 10,
            eta: 0.5,
        };
        assert_eq!(t.meta_len(0.5), 30); // 10 * 1.5 / 0.5
        let c = CodingFaultTransform {
            group_size: 10,
            eta: 0.5,
        };
        assert_eq!(c.meta_len(0.5), 40); // 10 / (0.5 * 0.5)
    }
}
