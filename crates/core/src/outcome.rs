//! Outcome summary of a single broadcast execution.

use radio_model::SimStats;

/// The result of one broadcast execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BroadcastRun {
    /// Rounds until the broadcast goal was reached, or `None` if the
    /// round budget ran out first.
    pub rounds: Option<u64>,
    /// Aggregate channel statistics for the run.
    pub stats: SimStats,
}

impl BroadcastRun {
    /// Whether the broadcast completed within its round budget.
    pub fn completed(&self) -> bool {
        self.rounds.is_some()
    }

    /// Rounds used, panicking if the run did not complete.
    ///
    /// # Panics
    ///
    /// Panics if the broadcast did not complete.
    pub fn rounds_used(&self) -> u64 {
        self.rounds
            .expect("broadcast did not complete within its round budget")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let done = BroadcastRun {
            rounds: Some(7),
            stats: SimStats::default(),
        };
        assert!(done.completed());
        assert_eq!(done.rounds_used(), 7);
        let not = BroadcastRun {
            rounds: None,
            stats: SimStats::default(),
        };
        assert!(!not.completed());
    }

    #[test]
    #[should_panic(expected = "did not complete")]
    fn rounds_used_panics_when_incomplete() {
        let not = BroadcastRun {
            rounds: None,
            stats: SimStats::default(),
        };
        let _ = not.rounds_used();
    }
}
