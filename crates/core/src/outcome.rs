//! Outcome summary of a single broadcast execution.

use netgraph::Graph;
use radio_model::{Channel, LatencyProfile, NodeBehavior, Payload, SimStats, Simulator};
use radio_obs::{SpanTimer, TelemetrySink};

use crate::CoreError;

/// The result of one broadcast execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BroadcastRun {
    /// Rounds until the broadcast goal was reached, or `None` if the
    /// round budget ran out first.
    pub rounds: Option<u64>,
    /// Aggregate channel statistics for the run.
    pub stats: SimStats,
}

impl BroadcastRun {
    /// Whether the broadcast completed within its round budget.
    pub fn completed(&self) -> bool {
        self.rounds.is_some()
    }

    /// Rounds used, panicking if the run did not complete.
    ///
    /// # Panics
    ///
    /// Panics if the broadcast did not complete.
    pub fn rounds_used(&self) -> u64 {
        self.rounds
            .expect("broadcast did not complete within its round budget")
    }
}

/// The shared profiled-run body of every single-message schedule
/// (`Decay`, `FastbcSchedule`, `RobustFastbcSchedule`,
/// `XinXiaSchedule`): build the simulator, shard it, run until every
/// node's decode is complete or `max_rounds`, and return the outcome
/// with its latency profile.
///
/// The completion check is the engine's O(1)
/// [`Simulator::run_until_decoded`] tally — equivalent to an
/// all-`informed` behavior scan for these schedules (their
/// [`NodeBehavior::decoded`] *is* `informed`), but it keeps the
/// per-round cost proportional to the sparse active set instead of
/// the node count.
///
/// The simulator runs with per-phase timing enabled iff `sink` is
/// enabled, and on completion the engine's `engine/*` spans and
/// counters plus a `schedule/run` wall-clock span are emitted into
/// it. The profile-only callers pass [`radio_obs::NullSink`].
///
/// Telemetry is observational only: the returned run and profile are
/// bit-identical under the same arguments whatever sink is attached.
pub(crate) fn run_profiled_telemetry<P, B, S>(
    graph: &Graph,
    fault: Channel,
    behaviors: Vec<B>,
    seed: u64,
    max_rounds: u64,
    shards: usize,
    sink: &mut S,
) -> Result<(BroadcastRun, LatencyProfile), CoreError>
where
    P: Payload + Send + Sync,
    B: NodeBehavior<P> + Send,
    S: TelemetrySink,
{
    let timer = SpanTimer::start(sink.enabled());
    let mut sim = Simulator::new(graph, fault, behaviors, seed)?
        .with_shards(shards)
        .with_telemetry(sink.enabled());
    let rounds = sim.run_until_decoded(max_rounds);
    timer.stop(sink, "schedule/run");
    sim.emit_telemetry(sink);
    Ok((
        BroadcastRun {
            rounds,
            stats: *sim.stats(),
        },
        sim.latency_profile(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let done = BroadcastRun {
            rounds: Some(7),
            stats: SimStats::default(),
        };
        assert!(done.completed());
        assert_eq!(done.rounds_used(), 7);
        let not = BroadcastRun {
            rounds: None,
            stats: SimStats::default(),
        };
        assert!(!not.completed());
    }

    #[test]
    #[should_panic(expected = "did not complete")]
    fn rounds_used_panics_when_incomplete() {
        let not = BroadcastRun {
            rounds: None,
            stats: SimStats::default(),
        };
        let _ = not.rounds_used();
    }
}
