//! Naive robustification baselines (paper §4.1 discussion).
//!
//! Before introducing Robust FASTBC, the paper observes two simple
//! ways to patch FASTBC against faults:
//!
//! * repeat **every round** `ρ = Θ(log n)` times — each transmission
//!   then fails with probability `p^ρ ≤ 1/n^{Ω(1)}` and a union bound
//!   over the schedule works, but the linear dependence on `D` is lost
//!   (`O(D log n + polylog n)`, no better than Decay);
//! * repeat every round `ρ = Θ(log log n)` times — drives the per-hop
//!   fault rate to `1/polylog(n)`, giving `O(D log log n + polylog n)`.
//!
//! [`RepeatedFastbcSchedule`] implements both (any `ρ ≥ 1`) by
//! dilating a compiled [`FastbcSchedule`] in time. These are the
//! ablation baselines between FASTBC (Lemma 10) and Robust FASTBC
//! (Theorem 11) in the E5 experiment.

use netgraph::{Graph, NodeId};
use radio_model::{Action, Channel, Ctx, NodeBehavior, Reception, Simulator};

use crate::decay::DecayNode;
use crate::fastbc::{FastbcParams, FastbcSchedule};
use crate::{BroadcastRun, CoreError};

/// A FASTBC schedule with every round repeated `ρ` times.
///
/// # Example
///
/// ```
/// use netgraph::{generators, NodeId};
/// use noisy_radio_core::repetition::RepeatedFastbcSchedule;
/// use radio_model::Channel;
///
/// let g = generators::path(32);
/// let sched = RepeatedFastbcSchedule::new(&g, NodeId::new(0), 3).unwrap();
/// let run = sched.run(Channel::receiver(0.3).unwrap(), 1, 1_000_000).unwrap();
/// assert!(run.completed());
/// ```
#[derive(Debug)]
pub struct RepeatedFastbcSchedule<'g> {
    inner: FastbcSchedule<'g>,
    graph: &'g Graph,
    repetitions: u32,
    /// Simulator shard count (1 = sequential, 0 = auto).
    shards: usize,
}

impl<'g> RepeatedFastbcSchedule<'g> {
    /// Compiles a repeated-FASTBC schedule with `repetitions = ρ ≥ 1`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] if `ρ == 0`;
    /// [`CoreError::Gbst`] on GBST construction failure.
    pub fn new(graph: &'g Graph, source: NodeId, repetitions: u32) -> Result<Self, CoreError> {
        Self::with_params(graph, source, repetitions, FastbcParams::default())
    }

    /// Compiles with explicit FASTBC parameters.
    ///
    /// # Errors
    ///
    /// As [`RepeatedFastbcSchedule::new`].
    pub fn with_params(
        graph: &'g Graph,
        source: NodeId,
        repetitions: u32,
        params: FastbcParams,
    ) -> Result<Self, CoreError> {
        if repetitions == 0 {
            return Err(CoreError::InvalidParameter {
                reason: "repetitions must be ≥ 1".into(),
            });
        }
        let inner = FastbcSchedule::with_params(graph, source, params)?;
        Ok(RepeatedFastbcSchedule {
            inner,
            graph,
            repetitions,
            shards: 1,
        })
    }

    /// Sets the simulator shard count (1 = sequential, 0 = auto);
    /// results are bit-identical for any value.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// The repetition factor `ρ`.
    pub fn repetitions(&self) -> u32 {
        self.repetitions
    }

    /// The wrapped (undilated) schedule.
    pub fn inner(&self) -> &FastbcSchedule<'g> {
        &self.inner
    }

    /// Runs until every node is informed or `max_rounds` elapse.
    ///
    /// # Errors
    ///
    /// [`CoreError::Model`] for simulator configuration errors.
    pub fn run(
        &self,
        fault: Channel,
        seed: u64,
        max_rounds: u64,
    ) -> Result<BroadcastRun, CoreError> {
        let gbst = self.inner.gbst();
        let n = self.graph.node_count();
        let behaviors: Vec<DilatedFastbcNode> = (0..n)
            .map(|i| {
                let v = NodeId::from_index(i);
                DilatedFastbcNode {
                    informed: v == gbst.source(),
                    repetitions: u64::from(self.repetitions),
                    phase_len: self.inner.phase_len(),
                    fast: gbst.is_fast(v).then(|| FastSlot {
                        level: gbst.level(v),
                        rank: gbst.rank(v),
                        modulus: self.inner.modulus(),
                    }),
                }
            })
            .collect();
        let mut sim = Simulator::new(self.graph, fault, behaviors, seed)?.with_shards(self.shards);
        let rounds = sim.run_until(max_rounds, |bs| bs.iter().all(|b| b.informed));
        Ok(BroadcastRun {
            rounds,
            stats: *sim.stats(),
        })
    }
}

#[derive(Debug, Clone, Copy)]
struct FastSlot {
    level: u32,
    rank: u32,
    modulus: u64,
}

impl FastSlot {
    fn matches(&self, t: u64) -> bool {
        let l = i64::from(self.level);
        let r = i64::from(self.rank);
        (t as i64 - (l - 6 * r)).rem_euclid(self.modulus as i64) == 0
    }
}

/// FASTBC node behavior dilated by `ρ`: real round `r` executes base
/// round `r / ρ` (fresh randomness per repetition of slow rounds).
#[derive(Debug, Clone)]
struct DilatedFastbcNode {
    informed: bool,
    repetitions: u64,
    phase_len: u32,
    fast: Option<FastSlot>,
}

impl NodeBehavior<()> for DilatedFastbcNode {
    fn act(&mut self, ctx: &mut Ctx<'_>) -> Action<()> {
        if !self.informed {
            return Action::Listen;
        }
        let base = ctx.round / self.repetitions;
        if base.is_multiple_of(2) {
            let t = base / 2;
            match self.fast {
                Some(slot) if slot.matches(t) => Action::Broadcast(()),
                _ => Action::Listen,
            }
        } else {
            let t = (base - 1) / 2;
            if DecayNode::draw_broadcast(self.phase_len, t, ctx.rng) {
                Action::Broadcast(())
            } else {
                Action::Listen
            }
        }
    }

    fn receive(&mut self, _ctx: &mut Ctx<'_>, rx: Reception<()>) {
        if rx.is_packet() {
            self.informed = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators;

    #[test]
    fn zero_repetitions_rejected() {
        let g = generators::path(8);
        assert!(matches!(
            RepeatedFastbcSchedule::new(&g, NodeId::new(0), 0),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn one_repetition_behaves_like_fastbc() {
        let g = generators::path(64);
        let rep = RepeatedFastbcSchedule::new(&g, NodeId::new(0), 1).unwrap();
        let base = FastbcSchedule::new(&g, NodeId::new(0)).unwrap();
        let a = rep
            .run(Channel::faultless(), 3, 100_000)
            .unwrap()
            .rounds_used();
        let b = base
            .run(Channel::faultless(), 3, 100_000)
            .unwrap()
            .rounds_used();
        // Identical schedule logic; rounds may differ only through RNG
        // stream usage, which is also identical here.
        assert_eq!(a, b);
    }

    #[test]
    fn repetition_tames_faults() {
        // With ρ = 4 and p = 0.5 the per-slot failure rate is 1/16:
        // the dilated schedule should track ρ × faultless closely,
        // while paying the dilation factor.
        let g = generators::path(128);
        let rep = RepeatedFastbcSchedule::new(&g, NodeId::new(0), 4).unwrap();
        let clean = rep
            .run(Channel::faultless(), 1, 10_000_000)
            .unwrap()
            .rounds_used();
        let noisy = rep
            .run(Channel::receiver(0.5).unwrap(), 1, 10_000_000)
            .unwrap()
            .rounds_used();
        assert!(
            (noisy as f64) < 3.0 * clean as f64,
            "ρ=4 should absorb p=0.5 faults: clean {clean}, noisy {noisy}"
        );
    }

    #[test]
    fn dilation_slows_faultless_run() {
        let g = generators::path(64);
        let base = FastbcSchedule::new(&g, NodeId::new(0)).unwrap();
        let rep = RepeatedFastbcSchedule::new(&g, NodeId::new(0), 4).unwrap();
        let b = base
            .run(Channel::faultless(), 5, 1_000_000)
            .unwrap()
            .rounds_used();
        let r = rep
            .run(Channel::faultless(), 5, 1_000_000)
            .unwrap()
            .rounds_used();
        assert!(
            r >= 3 * b,
            "dilated run should cost ~ρ× faultless: base {b}, dilated {r}"
        );
    }

    #[test]
    fn accessors() {
        let g = generators::path(8);
        let rep = RepeatedFastbcSchedule::new(&g, NodeId::new(0), 5).unwrap();
        assert_eq!(rep.repetitions(), 5);
        assert_eq!(rep.inner().gbst().source(), NodeId::new(0));
    }
}
