//! The bipartite-layer pipelining schedule (paper §5.1.2, Lemmas
//! 20–21): an adaptive routing schedule achieving `Ω(1/log² n)`
//! throughput on **every** topology, under receiver faults.
//!
//! The BFS layering of the graph from the source decomposes broadcast
//! into bipartite hops `L_i → L_{i+1}`. Layers work `3` apart (layer
//! `i` is active in meta-rounds `≡ i (mod 3)`), so receivers of an
//! active layer never hear broadcasters of another active layer — BFS
//! adjacency only spans one level. Within its activation, a layer
//! pushes its lowest not-yet-delivered message to the next layer with
//! Decay steps; each message costs `O(log² n)` rounds per hop w.h.p.
//! (Lemma 20), and the pipeline overlaps hops so `k` messages cross
//! the whole network in `O((D + k) log² n)` rounds (Lemma 21).
//!
//! On the worst-case topology this schedule is *tight*: Lemma 19 shows
//! `O(1/log² n)` is also an upper bound there, making the worst-case
//! routing throughput `Θ(1/log² n)` (Lemma 22).

use netgraph::bfs::BfsLayers;
use netgraph::{Graph, NodeId};
use radio_model::adaptive::{
    run_routing, Knowledge, MsgId, RoutingAction, RoutingController, RoutingOutcome,
};
use radio_model::Channel;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::decay::{default_phase_len, DecayNode};
use crate::CoreError;

/// The Lemma 21 controller. Construct with [`BipartitePipeline::new`],
/// then drive it through [`radio_model::adaptive::run_routing`] or the
/// convenience wrapper [`pipeline_routing`].
#[derive(Debug, Clone)]
pub struct BipartitePipeline {
    /// BFS level per node.
    levels: Vec<u32>,
    /// `layers[i]` = nodes at distance `i` from the source.
    layers: Vec<Vec<NodeId>>,
    phase_len: u32,
    /// Rounds per meta-round (one activation window).
    meta_len: u64,
}

impl BipartitePipeline {
    /// Builds the pipeline controller for `graph` from `source` with
    /// default parameters (`phase_len = ⌈log₂ n⌉ + 1`,
    /// `meta_len = 3 · phase_len`).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] if the source is out of bounds
    /// or some node is unreachable from it.
    pub fn new(graph: &Graph, source: NodeId) -> Result<Self, CoreError> {
        let phase_len = default_phase_len(graph.node_count());
        Self::with_params(graph, source, phase_len, 3 * u64::from(phase_len))
    }

    /// Builds with explicit Decay phase length and meta-round length.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] on zero parameters, a bad
    /// source, or a disconnected graph.
    pub fn with_params(
        graph: &Graph,
        source: NodeId,
        phase_len: u32,
        meta_len: u64,
    ) -> Result<Self, CoreError> {
        if phase_len == 0 || meta_len == 0 {
            return Err(CoreError::InvalidParameter {
                reason: "phase_len and meta_len must be ≥ 1".into(),
            });
        }
        if source.index() >= graph.node_count() {
            return Err(CoreError::InvalidParameter {
                reason: format!(
                    "source {source} out of bounds for {} nodes",
                    graph.node_count()
                ),
            });
        }
        let layering = BfsLayers::compute(graph, source);
        if !layering.spans_graph() {
            return Err(CoreError::InvalidParameter {
                reason: "graph is disconnected from the source".into(),
            });
        }
        let layers: Vec<Vec<NodeId>> = (0..layering.layer_count())
            .map(|i| layering.layer(i).to_vec())
            .collect();
        Ok(BipartitePipeline {
            levels: layering.levels().to_vec(),
            layers,
            phase_len,
            meta_len,
        })
    }

    /// Number of BFS layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The meta-round length in rounds.
    pub fn meta_len(&self) -> u64 {
        self.meta_len
    }

    /// The message layer `i` should push next: the lowest message that
    /// some node of layer `i+1` misses and some node of layer `i` has.
    fn frontier_message(&self, i: usize, knowledge: &Knowledge) -> Option<MsgId> {
        let next = self.layers.get(i + 1)?;
        let k = knowledge.message_count();
        let mut candidate: Option<MsgId> = None;
        for &v in next {
            if let Some(m) = knowledge.first_missing(v) {
                candidate = Some(match candidate {
                    None => m,
                    Some(cur) if m < cur => m,
                    Some(cur) => cur,
                });
                if candidate == Some(MsgId(0)) {
                    break;
                }
            }
        }
        let mut m = candidate?;
        // Advance to the lowest missing message the pushing layer can
        // actually supply.
        while (m.index()) < k {
            if self.layers[i].iter().any(|&u| knowledge.knows(u, m))
                && next.iter().any(|&v| !knowledge.knows(v, m))
            {
                return Some(m);
            }
            m = MsgId(m.0 + 1);
        }
        None
    }
}

impl RoutingController for BipartitePipeline {
    fn decide(
        &mut self,
        round: u64,
        knowledge: &Knowledge,
        rng: &mut SmallRng,
    ) -> Vec<RoutingAction> {
        let n = knowledge.node_count();
        let mut actions = vec![RoutingAction::Silent; n];
        let active_residue = (round / self.meta_len) % 3;
        let p = DecayNode::broadcast_probability(self.phase_len, round);
        for i in 0..self.layers.len().saturating_sub(1) {
            if i as u64 % 3 != active_residue {
                continue;
            }
            let Some(m) = self.frontier_message(i, knowledge) else {
                continue;
            };
            for &u in &self.layers[i] {
                if knowledge.knows(u, m) && rng.gen_bool(p) {
                    actions[u.index()] = RoutingAction::Send(m);
                }
            }
        }
        let _ = &self.levels; // levels retained for debugging/inspection
        actions
    }
}

/// Convenience wrapper: run the pipeline schedule for `k` messages on
/// `graph` from `source`.
///
/// # Errors
///
/// Propagates construction and simulator errors.
pub fn pipeline_routing(
    graph: &Graph,
    source: NodeId,
    k: usize,
    fault: Channel,
    seed: u64,
    max_rounds: u64,
) -> Result<RoutingOutcome, CoreError> {
    let mut controller = BipartitePipeline::new(graph, source)?;
    Ok(run_routing(
        graph,
        fault,
        source,
        k,
        &mut controller,
        seed,
        max_rounds,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators;

    #[test]
    fn faultless_path_completes() {
        let g = generators::path(12);
        let out =
            pipeline_routing(&g, NodeId::new(0), 4, Channel::faultless(), 1, 200_000).unwrap();
        assert!(out.rounds.is_some());
    }

    #[test]
    fn receiver_faults_star_completes() {
        let g = generators::star(64);
        let out = pipeline_routing(
            &g,
            NodeId::new(0),
            8,
            Channel::receiver(0.5).unwrap(),
            3,
            1_000_000,
        )
        .unwrap();
        assert!(out.rounds.is_some());
    }

    #[test]
    fn layered_graph_pipelines_under_faults() {
        let g = generators::layered_random(6, 6, 0.3, 5).unwrap();
        let out = pipeline_routing(
            &g,
            NodeId::new(0),
            6,
            Channel::receiver(0.3).unwrap(),
            7,
            2_000_000,
        )
        .unwrap();
        assert!(
            out.rounds.is_some(),
            "pipeline must finish on layered graphs"
        );
    }

    #[test]
    fn throughput_scales_with_k_not_diameter_times_k() {
        // Pipelining: 2k messages over a D-layer graph should cost
        // roughly double k messages, not 2k·D.
        let g = generators::layered_random(8, 4, 0.4, 9).unwrap();
        let rounds = |k: usize| {
            pipeline_routing(
                &g,
                NodeId::new(0),
                k,
                Channel::receiver(0.3).unwrap(),
                11,
                4_000_000,
            )
            .unwrap()
            .rounds
            .unwrap()
        };
        let r8 = rounds(8);
        let r16 = rounds(16);
        assert!(
            (r16 as f64) < 2.8 * r8 as f64,
            "pipelining broken: k=8 took {r8}, k=16 took {r16}"
        );
    }

    #[test]
    fn disconnected_rejected() {
        let g = netgraph::Graph::from_edges(3, [(NodeId::new(0), NodeId::new(1))]).unwrap();
        assert!(matches!(
            BipartitePipeline::new(&g, NodeId::new(0)),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn zero_params_rejected() {
        let g = generators::path(4);
        assert!(BipartitePipeline::with_params(&g, NodeId::new(0), 0, 10).is_err());
        assert!(BipartitePipeline::with_params(&g, NodeId::new(0), 3, 0).is_err());
    }

    #[test]
    fn layer_count_matches_bfs() {
        let g = generators::path(7);
        let p = BipartitePipeline::new(&g, NodeId::new(0)).unwrap();
        assert_eq!(p.layer_count(), 7);
        assert!(p.meta_len() > 0);
    }
}
