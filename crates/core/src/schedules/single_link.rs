//! Single-link schedules (paper Appendix A).
//!
//! Two nodes joined by one edge. With constant fault probability:
//!
//! * **non-adaptive routing** must decide in advance how often to
//!   repeat each message; `Θ(log k)` repetitions are necessary and
//!   sufficient for failure probability `≤ 1/k`, so the throughput is
//!   `Θ(1/log k)` (Lemma 29);
//! * **coding** sends `~k/(1−p)` Reed–Solomon packets, any `k` of
//!   which decode: throughput `Θ(1)` (Lemma 30);
//! * **adaptive routing** repeats each message until it is received:
//!   `k/(1−p)` rounds in expectation, throughput `Θ(1)` (Lemma 32).
//!
//! Hence a `Θ(log k)` coding gap without adaptivity (Lemma 31) that
//! collapses to `Θ(1)` with adaptivity (Lemma 33).

use netgraph::{generators, NodeId};
use radio_model::adaptive::run_routing;
use radio_model::{Action, Channel, Ctx, NodeBehavior, Reception, Simulator};

use crate::schedules::SequentialSourceController;
use crate::{BroadcastRun, CoreError};

/// Outcome of a fixed-length (non-adaptive) single-link run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedLengthRun {
    /// Total rounds the schedule used (always `k × repetitions` for
    /// routing, `total_packets` for coding).
    pub rounds: u64,
    /// Whether the receiver could reconstruct all `k` messages.
    pub success: bool,
}

/// Sender behavior for the non-adaptive routing schedule: message `i`
/// is broadcast in rounds `[i·reps, (i+1)·reps)`.
#[derive(Debug, Clone)]
enum LinkNode {
    RoutingSender {
        reps: u64,
        k: u64,
    },
    /// Receiver tracking which messages arrived.
    RoutingReceiver {
        got: Vec<bool>,
    },
    CodingSender,
    CodingReceiver {
        received: u64,
    },
}

impl NodeBehavior<u64> for LinkNode {
    fn act(&mut self, ctx: &mut Ctx<'_>) -> Action<u64> {
        match self {
            LinkNode::RoutingSender { reps, k } => {
                let msg = ctx.round / *reps;
                if msg < *k {
                    Action::Broadcast(msg)
                } else {
                    Action::Listen
                }
            }
            LinkNode::CodingSender => Action::Broadcast(ctx.round),
            _ => Action::Listen,
        }
    }

    fn receive(&mut self, _ctx: &mut Ctx<'_>, rx: Reception<u64>) {
        let Some(packet) = rx.packet() else { return };
        match self {
            LinkNode::RoutingReceiver { got } => {
                if let Some(slot) = got.get_mut(packet as usize) {
                    *slot = true;
                }
            }
            LinkNode::CodingReceiver { received } => *received += 1,
            _ => {}
        }
    }
}

/// Lemma 29's non-adaptive routing schedule: each of the `k` messages
/// is broadcast `repetitions` times, blindly. Succeeds iff every
/// message got through at least once.
///
/// # Errors
///
/// [`CoreError::InvalidParameter`] if `k == 0` or `repetitions == 0`.
pub fn single_link_nonadaptive_routing(
    k: usize,
    repetitions: u64,
    fault: Channel,
    seed: u64,
) -> Result<FixedLengthRun, CoreError> {
    if k == 0 || repetitions == 0 {
        return Err(CoreError::InvalidParameter {
            reason: "k and repetitions must be ≥ 1".into(),
        });
    }
    let g = generators::single_link();
    let behaviors = vec![
        LinkNode::RoutingSender {
            reps: repetitions,
            k: k as u64,
        },
        LinkNode::RoutingReceiver {
            got: vec![false; k],
        },
    ];
    let mut sim = Simulator::new(&g, fault, behaviors, seed)?;
    let rounds = k as u64 * repetitions;
    sim.run(rounds);
    let success = match &sim.behaviors()[1] {
        LinkNode::RoutingReceiver { got } => got.iter().all(|&b| b),
        _ => unreachable!("receiver is node 1"),
    };
    Ok(FixedLengthRun { rounds, success })
}

/// Lemma 30's coding schedule: broadcast `total_packets` fresh coded
/// packets; the receiver decodes iff at least `k` arrive.
///
/// # Errors
///
/// [`CoreError::InvalidParameter`] if `k == 0` or `total_packets == 0`.
pub fn single_link_coding(
    k: usize,
    total_packets: u64,
    fault: Channel,
    seed: u64,
) -> Result<FixedLengthRun, CoreError> {
    if k == 0 || total_packets == 0 {
        return Err(CoreError::InvalidParameter {
            reason: "k and total_packets must be ≥ 1".into(),
        });
    }
    let g = generators::single_link();
    let behaviors = vec![
        LinkNode::CodingSender,
        LinkNode::CodingReceiver { received: 0 },
    ];
    let mut sim = Simulator::new(&g, fault, behaviors, seed)?;
    sim.run(total_packets);
    let success = match &sim.behaviors()[1] {
        LinkNode::CodingReceiver { received } => *received >= k as u64,
        _ => unreachable!("receiver is node 1"),
    };
    Ok(FixedLengthRun {
        rounds: total_packets,
        success,
    })
}

/// Lemma 32's adaptive routing schedule: the source repeats each
/// message until the receiver has it, then moves on. Returns the
/// rounds used (`≈ k/(1−p)`).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn single_link_adaptive_routing(
    k: usize,
    fault: Channel,
    seed: u64,
    max_rounds: u64,
) -> Result<BroadcastRun, CoreError> {
    let g = generators::single_link();
    let mut c = SequentialSourceController {
        source: NodeId::new(0),
    };
    let out = run_routing(&g, fault, NodeId::new(0), k, &mut c, seed, max_rounds)?;
    Ok(BroadcastRun {
        rounds: out.rounds,
        stats: Default::default(),
    })
}

/// Empirically finds the smallest repetition count whose non-adaptive
/// schedule succeeds in at least `required` of `trials` runs — the
/// `Θ(log k)` of Lemma 29, measured.
///
/// # Errors
///
/// Propagates [`single_link_nonadaptive_routing`] errors.
pub fn minimal_repetitions_for_success(
    k: usize,
    fault: Channel,
    trials: u64,
    required: u64,
    max_repetitions: u64,
) -> Result<Option<u64>, CoreError> {
    for reps in 1..=max_repetitions {
        let mut ok = 0;
        for t in 0..trials {
            if single_link_nonadaptive_routing(k, reps, fault, 0x51E6 + 7919 * t)?.success {
                ok += 1;
            }
        }
        if ok >= required {
            return Ok(Some(reps));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faultless_nonadaptive_needs_one_repetition() {
        let run = single_link_nonadaptive_routing(16, 1, Channel::faultless(), 1).unwrap();
        assert!(run.success);
        assert_eq!(run.rounds, 16);
    }

    #[test]
    fn noisy_nonadaptive_single_repetition_fails_for_large_k() {
        // With p = 1/2 and one repetition, all k messages survive with
        // probability 2^-k: k = 64 fails essentially always.
        let run =
            single_link_nonadaptive_routing(64, 1, Channel::receiver(0.5).unwrap(), 3).unwrap();
        assert!(!run.success);
    }

    #[test]
    fn log_k_repetitions_suffice() {
        // Lemma 29 upper bound: c·log k repetitions with c = 3 at
        // p = 1/2 gives failure probability ≤ k · 2^{-3 log k} = 1/k².
        let k = 64;
        let reps = 3 * 6; // 3 log2(64)
        let mut ok = 0;
        for seed in 0..20 {
            if single_link_nonadaptive_routing(
                k,
                reps as u64,
                Channel::receiver(0.5).unwrap(),
                seed,
            )
            .unwrap()
            .success
            {
                ok += 1;
            }
        }
        assert!(ok >= 19, "only {ok}/20 succeeded with 3 log k repetitions");
    }

    #[test]
    fn minimal_repetitions_grow_with_k() {
        // The Θ(log k) shape: the required repetition count increases
        // from k = 4 to k = 256.
        let fault = Channel::receiver(0.5).unwrap();
        let small = minimal_repetitions_for_success(4, fault, 10, 9, 64)
            .unwrap()
            .unwrap();
        let large = minimal_repetitions_for_success(256, fault, 10, 9, 64)
            .unwrap()
            .unwrap();
        assert!(large > small, "reps(4) = {small}, reps(256) = {large}");
    }

    #[test]
    fn coding_with_linear_packets_succeeds() {
        // Lemma 30: ~k/(1-p)·(1+slack) packets decode w.h.p.
        let k = 128;
        let total = (k as f64 / 0.5 * 1.3) as u64;
        let mut ok = 0;
        for seed in 0..20 {
            if single_link_coding(k, total, Channel::receiver(0.5).unwrap(), seed)
                .unwrap()
                .success
            {
                ok += 1;
            }
        }
        assert!(ok >= 19, "only {ok}/20 coding runs succeeded");
    }

    #[test]
    fn coding_with_k_packets_fails_under_faults() {
        let k = 64;
        let run = single_link_coding(k, k as u64, Channel::receiver(0.5).unwrap(), 5).unwrap();
        assert!(!run.success, "k packets cannot survive p=1/2 erasures");
    }

    #[test]
    fn adaptive_routing_is_constant_throughput() {
        // Lemma 32: ≈ k/(1-p) = 2k rounds at p = 1/2.
        let k = 256;
        let run =
            single_link_adaptive_routing(k, Channel::sender(0.5).unwrap(), 7, 1_000_000).unwrap();
        let rounds = run.rounds_used();
        let per_msg = rounds as f64 / k as f64;
        assert!(
            (1.5..3.0).contains(&per_msg),
            "per-message rounds {per_msg}"
        );
    }

    #[test]
    fn parameter_validation() {
        assert!(single_link_nonadaptive_routing(0, 1, Channel::faultless(), 0).is_err());
        assert!(single_link_nonadaptive_routing(1, 0, Channel::faultless(), 0).is_err());
        assert!(single_link_coding(0, 1, Channel::faultless(), 0).is_err());
        assert!(single_link_coding(1, 0, Channel::faultless(), 0).is_err());
    }
}
