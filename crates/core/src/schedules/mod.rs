//! Adaptive routing and coding schedules (paper §5 and Appendix A).
//!
//! The throughput-gap results compare, per topology, the best routing
//! schedule the paper's strong adaptive model allows (Definition 14)
//! with Reed–Solomon-style coding schedules:
//!
//! | Module | Topology | Paper claims |
//! |---|---|---|
//! | [`star`] | star | routing `Θ(1/log n)` (Lemma 15) vs coding `Θ(1)` (Lemma 16) ⇒ `Θ(log n)` gap (Theorem 17) |
//! | [`single_link`] | two nodes, one edge | non-adaptive routing `Θ(1/log k)` (Lemma 29), coding `Θ(1)` (Lemma 30), adaptive routing `Θ(1)` (Lemma 32) |
//! | [`pipeline`] | any graph | adaptive routing `Ω(1/log² n)` via BFS-layer batch pipelining (Lemmas 20–21) |
//! | [`wct`] | worst-case topology (Figure 2) | routing `Θ(1/log² n)` (Lemma 19) vs coding `Θ(1/log n)` (Lemma 23) ⇒ worst-case gap `Θ(log n)` (Theorem 24) |
//! | [`latency`] | mesh / any graph | Xin–Xia (arXiv:1709.01494) layer-pipelined broadcast: per-node latency `O(d)` instead of Decay's `O(d log n)`, plus an oblivious transform-eligible variant |

pub mod latency;
pub mod pipeline;
pub mod single_link;
pub mod star;
pub mod wct;

use netgraph::NodeId;
use radio_model::adaptive::{Knowledge, RoutingAction, RoutingController};
use rand::rngs::SmallRng;

/// The sequential source schedule of Lemmas 15 and 32: the source
/// broadcasts the lowest-indexed message some node is still missing,
/// and keeps broadcasting it until everyone has it.
///
/// On the star this is the `Θ(1/log n)`-throughput adaptive routing
/// schedule of Lemma 15; on the single link it is the
/// `Θ(1)`-throughput schedule of Lemma 32.
#[derive(Debug, Clone, Copy)]
pub struct SequentialSourceController {
    /// The broadcasting source.
    pub source: NodeId,
}

impl RoutingController for SequentialSourceController {
    fn decide(
        &mut self,
        _round: u64,
        knowledge: &Knowledge,
        _rng: &mut SmallRng,
    ) -> Vec<RoutingAction> {
        let n = knowledge.node_count();
        let mut lowest = None;
        for i in 0..n {
            if let Some(m) = knowledge.first_missing(NodeId::from_index(i)) {
                lowest = Some(match lowest {
                    None => m,
                    Some(cur) if m < cur => m,
                    Some(cur) => cur,
                });
            }
        }
        (0..n)
            .map(|i| {
                if NodeId::from_index(i) == self.source {
                    lowest.map_or(RoutingAction::Silent, RoutingAction::Send)
                } else {
                    RoutingAction::Silent
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators;
    use radio_model::adaptive::run_routing;
    use radio_model::Channel;

    #[test]
    fn sequential_source_on_faultless_star_uses_k_rounds() {
        let g = generators::star(16);
        let mut c = SequentialSourceController {
            source: NodeId::new(0),
        };
        let out =
            run_routing(&g, Channel::faultless(), NodeId::new(0), 8, &mut c, 1, 1000).unwrap();
        assert_eq!(out.rounds, Some(8));
    }
}
