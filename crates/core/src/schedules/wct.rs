//! Worst-case-topology schedules (paper §5.1.2).
//!
//! On the WCT (clusters of receivers duplicated from the collision
//! network of \[19\], see [`netgraph::wct`]):
//!
//! * at most an `O(1/log n)` fraction of clusters hears a
//!   collision-free packet per round, whatever the broadcast set
//!   (Lemma 18) — measured here by [`max_fraction_receiving_probe`];
//! * **adaptive routing** throughput is `Θ(1/log² n)` (Lemmas 19–22):
//!   each cluster behaves like a star needing `Ω(k log n)` receptions,
//!   and only a `1/log n` fraction of clusters makes progress per
//!   round. The matching schedule is the [bipartite
//!   pipeline](crate::schedules::pipeline), wrapped by [`wct_routing`];
//! * **coding** throughput is `Θ(1/log n)` (Lemma 23): with
//!   Reed–Solomon packets every reception is useful, so a cluster
//!   member needs only `k` receptions total — implemented by
//!   [`wct_coding`] as a two-stage schedule (source → senders, then
//!   class-rotating sender subsets → clusters).
//!
//! Together: the worst-case topology gap of Theorem 24 is `Θ(log n)`.

use netgraph::wct::Wct;
use netgraph::NodeId;
use radio_model::adaptive::RoutingOutcome;
use radio_model::{fork_rng, Channel};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::schedules::pipeline::pipeline_routing;
use crate::CoreError;

/// Empirical Lemma 18 probe: the maximum fraction of clusters that
/// receive a collision-free packet in one round, over a family of
/// broadcast sets (all prefix sizes `1, 2, 4, …` and `trials` random
/// subsets of each size).
pub fn max_fraction_receiving_probe(wct: &Wct, trials: u64, seed: u64) -> f64 {
    let senders = wct.senders();
    let mut rng = fork_rng(seed, 0x18);
    let mut worst: f64 = 0.0;
    let mut size = 1usize;
    while size <= senders.len() {
        let prefix: Vec<NodeId> = senders[..size].to_vec();
        worst = worst.max(wct.fraction_of_clusters_receiving(&prefix));
        for _ in 0..trials {
            let mut pool: Vec<NodeId> = senders.to_vec();
            pool.shuffle(&mut rng);
            pool.truncate(size);
            worst = worst.max(wct.fraction_of_clusters_receiving(&pool));
        }
        size *= 2;
    }
    worst
}

/// Adaptive routing on the WCT via the bipartite pipeline (the
/// Lemma 21 schedule, which Lemma 19 proves is within constants of
/// optimal here). Returns the routing outcome for `k` messages.
///
/// # Errors
///
/// Propagates pipeline construction and simulator errors.
pub fn wct_routing(
    wct: &Wct,
    k: usize,
    fault: Channel,
    seed: u64,
    max_rounds: u64,
) -> Result<RoutingOutcome, CoreError> {
    pipeline_routing(wct.graph(), wct.source(), k, fault, seed, max_rounds)
}

/// Outcome of the WCT coding schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WctCodingRun {
    /// Rounds until every sender and every cluster member held ≥ k
    /// coded packets, or `None` if the budget ran out.
    pub rounds: Option<u64>,
    /// Rounds spent before the last sender became ready.
    pub sender_phase_rounds: u64,
}

/// The Lemma 23 coding schedule on the WCT.
///
/// Every round the source broadcasts a fresh Reed–Solomon packet
/// (senders need any `k` to decode and re-encode). Ready senders
/// broadcast fresh packets in class-rotating subsets: to serve
/// degree-class `c` (expected cluster degree `m/2^c`), a uniformly
/// random subset of `≈ 2^c` ready senders broadcasts, so class-`c`
/// clusters see exactly one broadcaster with constant probability.
/// All packets are globally distinct, so every collision-free, fault-
/// free reception is innovative and a cluster member finishes after
/// `k` receptions.
///
/// The Reed–Solomon black box (any `k` distinct packets decode) is
/// proven in [`radio_coding::rs`]; the simulation tracks packet
/// counts.
///
/// # Errors
///
/// [`CoreError::InvalidParameter`] if `k == 0`;
/// [`CoreError::Model`] for an invalid fault model.
pub fn wct_coding(
    wct: &Wct,
    k: usize,
    fault: Channel,
    seed: u64,
    max_rounds: u64,
) -> Result<WctCodingRun, CoreError> {
    if k == 0 {
        return Err(CoreError::InvalidParameter {
            reason: "k must be ≥ 1".into(),
        });
    }
    let p = fault.fault_probability();
    let mut fault_rng = fork_rng(seed, 1);
    let mut sched_rng = fork_rng(seed, 2);

    let m = wct.senders().len();
    let classes = (usize::BITS - (m - 1).leading_zeros()).max(1);
    let mut sender_count = vec![0u64; m];
    let cluster_count = wct.cluster_count();
    let cluster_size = wct.cluster(0).len();
    let mut member_count = vec![vec![0u64; cluster_size]; cluster_count];
    let mut sender_phase_rounds = 0u64;

    for round in 0..max_rounds {
        let all_senders_ready = sender_count.iter().all(|&c| c >= k as u64);
        if all_senders_ready
            && member_count
                .iter()
                .all(|mc| mc.iter().all(|&c| c >= k as u64))
        {
            return Ok(WctCodingRun {
                rounds: Some(round),
                sender_phase_rounds,
            });
        }
        if !all_senders_ready {
            sender_phase_rounds = round + 1;
        }

        // --- choose broadcasters ---
        // Source broadcasts while any sender still needs packets.
        let source_broadcasts = !all_senders_ready;
        // Ready senders serve one degree class per round.
        let class = 1 + (round % u64::from(classes)) as u32;
        let subset_size = 1usize << class.min(30);
        let ready: Vec<usize> = (0..m).filter(|&s| sender_count[s] >= k as u64).collect();
        let mut broadcasting_senders = vec![false; m];
        if !ready.is_empty() {
            let take = subset_size.min(ready.len());
            // Uniform subset of the ready senders.
            let mut pool = ready.clone();
            pool.shuffle(&mut sched_rng);
            for &s in pool.iter().take(take) {
                broadcasting_senders[s] = true;
            }
        }

        // --- sender faults: one draw per broadcaster ---
        let source_ok = !fault.is_sender() || !source_broadcasts || !fault_rng.gen_bool(p);
        let mut sender_ok = vec![true; m];
        if fault.is_sender() {
            for s in 0..m {
                if broadcasting_senders[s] && fault_rng.gen_bool(p) {
                    sender_ok[s] = false;
                }
            }
        }

        // --- resolve sender receptions (from the source) ---
        if source_broadcasts && source_ok {
            for s in 0..m {
                if broadcasting_senders[s] {
                    continue; // half-duplex: broadcasting senders miss the source
                }
                if (fault.is_receiver() || fault.is_erasure()) && fault_rng.gen_bool(p) {
                    continue;
                }
                sender_count[s] += 1;
            }
        }

        // --- resolve cluster receptions ---
        for c in 0..cluster_count {
            let shared = wct.cluster_sender_set(c);
            let mut tx: Option<usize> = None;
            let mut hits = 0;
            for &s in shared {
                let idx = s.index() - 1; // senders are nodes 1..=m
                if broadcasting_senders[idx] {
                    hits += 1;
                    if hits > 1 {
                        break;
                    }
                    tx = Some(idx);
                }
            }
            if hits != 1 {
                continue;
            }
            let s = tx.expect("hits == 1 implies a sender");
            if !sender_ok[s] {
                continue;
            }
            for cnt in member_count[c].iter_mut() {
                if (fault.is_receiver() || fault.is_erasure()) && fault_rng.gen_bool(p) {
                    continue;
                }
                *cnt += 1;
            }
        }
    }
    Ok(WctCodingRun {
        rounds: None,
        sender_phase_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::wct::WctParams;

    fn small_wct(seed: u64) -> Wct {
        Wct::generate(WctParams {
            senders: 32,
            clusters_per_class: 6,
            cluster_size: 12,
            seed,
        })
        .unwrap()
    }

    #[test]
    fn lemma18_probe_stays_small() {
        let wct = small_wct(1);
        let frac = max_fraction_receiving_probe(&wct, 5, 3);
        assert!(frac < 0.7, "some broadcast set informed {frac} of clusters");
        assert!(frac > 0.0, "probe should find at least one productive set");
    }

    #[test]
    fn coding_completes_and_scales_linearly_in_k() {
        let wct = small_wct(2);
        let fault = Channel::receiver(0.5).unwrap();
        let r8 = wct_coding(&wct, 8, fault, 5, 10_000_000)
            .unwrap()
            .rounds
            .unwrap();
        let r16 = wct_coding(&wct, 16, fault, 5, 10_000_000)
            .unwrap()
            .rounds
            .unwrap();
        let ratio = r16 as f64 / r8 as f64;
        assert!(
            (1.2..3.5).contains(&ratio),
            "coding rounds should scale ~linearly in k: {r8} -> {r16}"
        );
    }

    #[test]
    fn routing_completes() {
        let wct = small_wct(3);
        let out = wct_routing(&wct, 4, Channel::receiver(0.5).unwrap(), 7, 20_000_000).unwrap();
        assert!(
            out.rounds.is_some(),
            "pipeline routing must finish on the WCT"
        );
    }

    #[test]
    fn routing_pays_more_than_coding() {
        // The Theorem 24 direction at fixed size: routing rounds
        // exceed coding rounds for the same k.
        let wct = small_wct(4);
        let k = 8;
        let fault = Channel::receiver(0.5).unwrap();
        let coding = wct_coding(&wct, k, fault, 9, 10_000_000)
            .unwrap()
            .rounds
            .unwrap();
        let routing = wct_routing(&wct, k, fault, 9, 20_000_000)
            .unwrap()
            .rounds
            .unwrap();
        assert!(
            routing > coding,
            "routing ({routing}) should be slower than coding ({coding})"
        );
    }

    #[test]
    fn sender_phase_is_reported() {
        let wct = small_wct(5);
        let run = wct_coding(&wct, 8, Channel::receiver(0.3).unwrap(), 3, 1_000_000).unwrap();
        assert!(run.rounds.is_some());
        assert!(run.sender_phase_rounds >= 8, "senders need ≥ k rounds");
        assert!(run.sender_phase_rounds <= run.rounds.unwrap());
    }

    #[test]
    fn zero_k_rejected() {
        let wct = small_wct(6);
        assert!(matches!(
            wct_coding(&wct, 0, Channel::faultless(), 0, 10),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn budget_exhaustion_reports_none() {
        let wct = small_wct(7);
        let run = wct_coding(&wct, 64, Channel::receiver(0.5).unwrap(), 1, 10).unwrap();
        assert_eq!(run.rounds, None);
    }
}
