//! Star-topology schedules (paper §5.1.1).
//!
//! The star — a source adjacent to `n` leaves — is the shared-topology
//! gap witness under receiver faults:
//!
//! * **adaptive routing** needs `Θ(k log n)` rounds: each message must
//!   be rebroadcast until the *last* of `n` independent leaves catches
//!   it, a maximum of geometrics worth `Θ(log n)` (Lemma 15);
//! * **Reed–Solomon coding** needs `O(k + log n)` rounds: every coded
//!   packet is useful to every leaf that hears it, so each leaf just
//!   needs *any* `k` receptions (Lemma 16).
//!
//! Together: a `Θ(log n)` coding gap on a fixed topology (Theorem 17).

use netgraph::{generators, Graph, NodeId};
use radio_model::adaptive::{run_routing, run_routing_telemetry, RoutingOutcome};
use radio_model::{Action, Channel, Ctx, NodeBehavior, Reception, Simulator};
use radio_obs::PhaseSet;

use crate::schedules::SequentialSourceController;
use crate::{BroadcastRun, CoreError};

/// Runs the Lemma 15 adaptive routing schedule on a star with
/// `leaves` leaves: broadcast `m_1` until every leaf has it, then
/// `m_2`, and so on.
///
/// # Errors
///
/// Propagates simulator configuration errors.
pub fn star_routing(
    leaves: usize,
    k: usize,
    fault: Channel,
    seed: u64,
    max_rounds: u64,
) -> Result<RoutingOutcome, CoreError> {
    let g = generators::star(leaves);
    let mut c = SequentialSourceController {
        source: NodeId::new(0),
    };
    Ok(run_routing(
        &g,
        fault,
        NodeId::new(0),
        k,
        &mut c,
        seed,
        max_rounds,
    )?)
}

/// [`star_routing`] with per-phase wall-clock attribution: also
/// returns the [`PhaseSet`] splitting the run between
/// `routing/decide` and `routing/resolve` (see
/// [`run_routing_telemetry`]) — the breakdown that exposes the
/// routing arm as E8's wall-clock hotspot at large leaf counts. The
/// outcome is bit-identical to [`star_routing`].
///
/// # Errors
///
/// As [`star_routing`].
pub fn star_routing_telemetry(
    leaves: usize,
    k: usize,
    fault: Channel,
    seed: u64,
    max_rounds: u64,
) -> Result<(RoutingOutcome, PhaseSet), CoreError> {
    let g = generators::star(leaves);
    let mut c = SequentialSourceController {
        source: NodeId::new(0),
    };
    Ok(run_routing_telemetry(
        &g,
        fault,
        NodeId::new(0),
        k,
        &mut c,
        seed,
        max_rounds,
    )?)
}

/// Center behavior for the coding schedule: broadcast a fresh coded
/// packet id every round (Reed–Solomon guarantees any `k` distinct
/// packets decode; validity of that black box is proven in
/// [`radio_coding::rs`], so the simulation carries packet *ids*).
#[derive(Debug, Clone)]
enum CodingNode {
    /// The source; emits packet `round` each round.
    Center,
    /// A leaf counting distinct received packets (all packets are
    /// globally distinct, so a counter suffices).
    Leaf { received: u64 },
}

impl NodeBehavior<u64> for CodingNode {
    fn act(&mut self, ctx: &mut Ctx<'_>) -> Action<u64> {
        match self {
            CodingNode::Center => Action::Broadcast(ctx.round),
            CodingNode::Leaf { .. } => Action::Listen,
        }
    }

    fn receive(&mut self, _ctx: &mut Ctx<'_>, rx: Reception<u64>) {
        if !rx.is_packet() {
            return;
        }
        if let CodingNode::Leaf { received } = self {
            *received += 1;
        }
    }

    // Quiescence opt-in: leaves never broadcast and only count
    // packets, so the act sweep can skip them every round — the
    // engine's reach set still delivers the center's broadcasts.
    fn wants_poll(&self) -> bool {
        matches!(self, CodingNode::Center)
    }
}

/// Runs the Lemma 16 Reed–Solomon coding schedule on a star until
/// every leaf holds `k` coded packets (and can therefore decode all
/// `k` messages), or `max_rounds` elapse.
///
/// # Errors
///
/// Propagates simulator configuration errors;
/// [`CoreError::InvalidParameter`] if `k == 0`.
pub fn star_coding(
    leaves: usize,
    k: usize,
    fault: Channel,
    seed: u64,
    max_rounds: u64,
) -> Result<BroadcastRun, CoreError> {
    star_coding_sharded(leaves, k, fault, seed, max_rounds, 1)
}

/// [`star_coding`] over `shards` engine shards
/// ([`Simulator::with_shards`]: 1 = sequential, 0 = auto) — for the
/// large-`n` scaling grids. Results are bit-identical for any shard
/// count; only wall-clock changes. (The routing arm,
/// [`star_routing`], runs the centralized adaptive controller, which
/// is not a `Simulator` and stays sequential.)
///
/// # Errors
///
/// As [`star_coding`].
pub fn star_coding_sharded(
    leaves: usize,
    k: usize,
    fault: Channel,
    seed: u64,
    max_rounds: u64,
    shards: usize,
) -> Result<BroadcastRun, CoreError> {
    if k == 0 {
        return Err(CoreError::InvalidParameter {
            reason: "k must be ≥ 1".into(),
        });
    }
    let g = generators::star(leaves);
    let behaviors: Vec<CodingNode> = std::iter::once(CodingNode::Center)
        .chain((0..leaves).map(|_| CodingNode::Leaf { received: 0 }))
        .collect();
    let mut sim = Simulator::new(&g, fault, behaviors, seed)?.with_shards(shards);
    let rounds = sim.run_until(max_rounds, |bs| {
        bs.iter().all(|b| match b {
            CodingNode::Center => true,
            CodingNode::Leaf { received } => *received >= k as u64,
        })
    });
    Ok(BroadcastRun {
        rounds,
        stats: *sim.stats(),
    })
}

/// Runs the fixed-length Lemma 16 schedule (`total_packets` rounds of
/// coded broadcast) and reports whether every leaf finished with at
/// least `k` packets — the success-probability form in which the
/// paper states the schedule (`100k + 100 log n` packets fail with
/// probability `< 1/k`).
///
/// # Errors
///
/// Propagates simulator configuration errors.
pub fn star_coding_fixed_length(
    leaves: usize,
    k: usize,
    total_packets: u64,
    fault: Channel,
    seed: u64,
) -> Result<bool, CoreError> {
    let g = generators::star(leaves);
    let behaviors: Vec<CodingNode> = std::iter::once(CodingNode::Center)
        .chain((0..leaves).map(|_| CodingNode::Leaf { received: 0 }))
        .collect();
    let mut sim = Simulator::new(&g, fault, behaviors, seed)?;
    sim.run(total_packets);
    Ok(sim.behaviors().iter().all(|b| match b {
        CodingNode::Center => true,
        CodingNode::Leaf { received } => *received >= k as u64,
    }))
}

/// End-to-end Reed–Solomon validation on a small star: run the coding
/// schedule with *real* GF(2¹⁶) packets and verify every leaf decodes
/// the original messages. The counting abstraction used by
/// [`star_coding`] is justified by this path.
///
/// Returns the number of rounds used.
///
/// # Errors
///
/// Propagates coding and simulator errors.
pub fn star_coding_end_to_end(
    leaves: usize,
    k: usize,
    payload_len: usize,
    fault: Channel,
    seed: u64,
    max_rounds: u64,
) -> Result<u64, CoreError> {
    use radio_coding::rs::ReedSolomon;
    use radio_coding::{Field, Gf65536};

    use std::rc::Rc;

    let mut rng = radio_model::fork_rng(seed, 0xE2E);
    let data: Rc<Vec<Vec<Gf65536>>> = Rc::new(
        (0..k)
            .map(|_| {
                (0..payload_len)
                    .map(|_| Gf65536::random(&mut rng))
                    .collect()
            })
            .collect(),
    );
    let rs = ReedSolomon::<Gf65536>::new(k)?;
    let g = generators::star(leaves);
    // The schedule can use at most |F| - 1 distinct packets.
    let max_rounds = max_rounds.min(ReedSolomon::<Gf65536>::capacity() as u64);

    #[derive(Debug)]
    struct RsStarNode {
        is_center: bool,
        k: usize,
        rs: ReedSolomon<Gf65536>,
        data: Rc<Vec<Vec<Gf65536>>>,
        packets: Vec<(usize, Vec<Gf65536>)>,
    }
    impl NodeBehavior<(u64, Vec<Gf65536>)> for RsStarNode {
        fn act(&mut self, ctx: &mut Ctx<'_>) -> Action<(u64, Vec<Gf65536>)> {
            if self.is_center {
                let j = ctx.round as usize;
                let packet = self.rs.packet(&self.data, j).expect("round below capacity");
                Action::Broadcast((ctx.round, packet))
            } else {
                Action::Listen
            }
        }
        fn receive(&mut self, _ctx: &mut Ctx<'_>, rx: Reception<(u64, Vec<Gf65536>)>) {
            let Some(packet) = rx.packet() else { return };
            if self.packets.len() < self.k {
                self.packets.push((packet.0 as usize, packet.1));
            }
        }
    }

    let behaviors: Vec<RsStarNode> = (0..=leaves)
        .map(|i| RsStarNode {
            is_center: i == 0,
            k,
            rs,
            data: Rc::clone(&data),
            packets: Vec::new(),
        })
        .collect();
    let mut sim = Simulator::new(&g, fault, behaviors, seed)?;
    let rounds = sim
        .run_until(max_rounds, |bs| {
            bs.iter().skip(1).all(|b| b.packets.len() >= k)
        })
        .ok_or_else(|| CoreError::InvalidParameter {
            reason: format!("star coding did not finish within {max_rounds} rounds"),
        })?;
    // Decode at every leaf and compare with the source data.
    for b in sim.behaviors().iter().skip(1) {
        let decoded = rs.decode(&b.packets)?;
        if decoded != *data {
            return Err(CoreError::InvalidParameter {
                reason: "leaf decoded different messages".into(),
            });
        }
    }
    Ok(rounds)
}

/// Convenience: build the star graph used by these schedules.
pub fn star_graph(leaves: usize) -> Graph {
    generators::star(leaves)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faultless_routing_is_k_rounds() {
        let out = star_routing(32, 10, Channel::faultless(), 1, 10_000).unwrap();
        assert_eq!(out.rounds, Some(10));
    }

    #[test]
    fn noisy_routing_pays_log_n_per_message() {
        let leaves = 256;
        let k = 32;
        let out = star_routing(leaves, k, Channel::receiver(0.5).unwrap(), 3, 1_000_000).unwrap();
        let per_msg = out.rounds.unwrap() as f64 / k as f64;
        // E[per message] ≈ log2(256) + O(1) = 8..12.
        assert!(
            (5.0..16.0).contains(&per_msg),
            "per-message rounds {per_msg}"
        );
    }

    #[test]
    fn noisy_coding_is_constant_per_message() {
        let leaves = 256;
        let k = 64;
        let run = star_coding(leaves, k, Channel::receiver(0.5).unwrap(), 5, 1_000_000).unwrap();
        let per_msg = run.rounds_used() as f64 / k as f64;
        // Each leaf needs k receptions at rate (1-p) = 1/2: ~2 rounds
        // per message plus a log n tail.
        assert!(
            (1.5..5.0).contains(&per_msg),
            "per-message rounds {per_msg}"
        );
    }

    #[test]
    fn coding_beats_routing_by_growing_factor() {
        // The Theorem 17 gap, miniaturized: ratio at n=64 < ratio at
        // n=1024.
        let k = 24;
        let gap_at = |leaves: usize| {
            let r = star_routing(leaves, k, Channel::receiver(0.5).unwrap(), 7, 1_000_000)
                .unwrap()
                .rounds
                .unwrap() as f64;
            let c = star_coding(leaves, k, Channel::receiver(0.5).unwrap(), 7, 1_000_000)
                .unwrap()
                .rounds_used() as f64;
            r / c
        };
        let small = gap_at(64);
        let large = gap_at(4096);
        assert!(
            large > small,
            "gap should grow with n: gap(64) = {small:.2}, gap(4096) = {large:.2}"
        );
        assert!(small > 1.0, "coding must already win at n = 64");
    }

    #[test]
    fn fixed_length_schedule_succeeds_with_paper_constants() {
        // Lemma 16: 100k + 100 log n packets suffice with failure
        // probability < 1/k; with p = 1/2 even 4k + 4 log n works.
        let leaves = 128;
        let k = 16;
        let total = 4 * k as u64 + 4 * 7;
        let mut successes = 0;
        for seed in 0..20 {
            if star_coding_fixed_length(leaves, k, total, Channel::receiver(0.5).unwrap(), seed)
                .unwrap()
            {
                successes += 1;
            }
        }
        assert!(
            successes >= 18,
            "only {successes}/20 fixed-length runs succeeded"
        );
    }

    #[test]
    fn end_to_end_rs_decoding_matches_counting_abstraction() {
        let rounds =
            star_coding_end_to_end(16, 8, 4, Channel::receiver(0.3).unwrap(), 11, 10_000).unwrap();
        assert!(rounds >= 8, "at least k rounds required, got {rounds}");
    }

    #[test]
    fn sharded_star_coding_matches_sequential() {
        // The §4c invariant surfaces through the protocol layer: the
        // whole BroadcastRun (rounds + stats) is bit-identical for any
        // shard count.
        let sequential =
            star_coding(256, 16, Channel::receiver(0.5).unwrap(), 7, 1_000_000).unwrap();
        for shards in [2, 3, 8, 1000] {
            let sharded = star_coding_sharded(
                256,
                16,
                Channel::receiver(0.5).unwrap(),
                7,
                1_000_000,
                shards,
            )
            .unwrap();
            assert_eq!(sequential, sharded, "shards = {shards}");
        }
    }

    #[test]
    fn zero_k_rejected() {
        assert!(matches!(
            star_coding(4, 0, Channel::faultless(), 0, 10),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn sender_faults_also_handled() {
        let out = star_routing(64, 8, Channel::sender(0.5).unwrap(), 9, 1_000_000).unwrap();
        assert!(out.rounds.is_some());
        let run = star_coding(64, 8, Channel::sender(0.5).unwrap(), 9, 1_000_000).unwrap();
        assert!(run.completed());
    }
}
