//! Latency-optimal pipelined broadcast schedules (Xin–Xia 2017,
//! *Latency Optimal Broadcasting in Noisy Wireless Mesh Networks*,
//! arXiv:1709.01494).
//!
//! Decay pays `Θ(log n)` rounds *per hop* because every informed node
//! contends blindly; under noise `p` a node at distance `d` decodes
//! after `Θ(d · log n / (1−p))` rounds. Xin–Xia observe that in a mesh
//! whose BFS layering from the source is known, the log factor can be
//! pipelined away: schedule layer `ℓ` in rounds `r ≡ ℓ (mod 3)` so
//! adjacent layers never interfere, and resolve the bounded in-layer
//! contention with a constant success probability per slot. A node at
//! distance `d` then decodes in `O(c·d/(1−p))` *expected* rounds —
//! **latency linear in its own distance**, not in `D·log n` — which is
//! the per-node quantity [`radio_model::LatencyProfile`] measures.
//!
//! Two variants:
//!
//! * [`XinXiaSchedule`] — the randomized distributed protocol run on
//!   the [`radio_model::Simulator`]: layer-slotted (`mod 3`) flooding where a
//!   layer-`ℓ` node broadcasts in its slots with probability
//!   `1/c_ℓ`, `c_ℓ` the layer's compiled contention bound. This is
//!   the noisy-model protocol the E14 sweep races against Decay and
//!   Robust FASTBC.
//! * [`xin_xia_pipeline`] — the **oblivious** multi-message variant: a
//!   deterministic, collision-free [`BaseSchedule`] (layer-TDMA inside
//!   the `mod 3` slots, one message entering the pipeline per frame).
//!   Being a plain faultless `BaseSchedule`, it is eligible for the
//!   paper's §5.2 black-box transforms
//!   ([`SenderFaultRoutingTransform`], [`CodingFaultTransform`])
//!   exactly like the star and path pipelines.
//!
//! [`SenderFaultRoutingTransform`]: crate::transform::SenderFaultRoutingTransform
//! [`CodingFaultTransform`]: crate::transform::CodingFaultTransform

use netgraph::bfs::BfsLayers;
use netgraph::{Graph, NodeId};
use radio_model::{Action, Channel, Ctx, LatencyProfile, NodeBehavior, Reception};

use crate::transform::BaseSchedule;
use crate::{BroadcastRun, CoreError};

/// A compiled Xin–Xia layer-pipelined broadcast schedule.
///
/// Compilation computes the BFS layering from the source and, per
/// layer `ℓ`, the contention bound `c_ℓ` = the maximum number of
/// layer-`ℓ` neighbors any layer-`ℓ+1` node has (≥ 1). At run time a
/// layer-`ℓ` node that holds the message broadcasts in rounds
/// `r ≡ ℓ (mod 3)` with probability `1/c_ℓ`; the `mod 3` slotting
/// guarantees a listener only ever hears from a single adjacent layer
/// (BFS edges span at most one layer), so the per-slot success
/// probability at every frontier listener is at least
/// `(1/c)(1−1/c)^{c−1} ≥ 1/(e·c)` — constant per slot, no `log n`.
///
/// # Example
///
/// ```
/// use netgraph::{generators, NodeId};
/// use noisy_radio_core::schedules::latency::XinXiaSchedule;
/// use radio_model::Channel;
///
/// let g = generators::path(64);
/// let sched = XinXiaSchedule::new(&g, NodeId::new(0)).unwrap();
/// let (run, profile) = sched
///     .run_profiled(Channel::receiver(0.3).unwrap(), 1, 100_000)
///     .unwrap();
/// assert!(run.completed());
/// // Per-node latency is linear in the node's own distance.
/// assert!(profile.first_packet(NodeId::new(1)).unwrap()
///     <= profile.first_packet(NodeId::new(63)).unwrap());
/// ```
#[derive(Debug)]
pub struct XinXiaSchedule<'g> {
    graph: &'g Graph,
    layers: BfsLayers,
    /// `contention[ℓ]` = `c_ℓ` for broadcasting layer `ℓ` (≥ 1).
    contention: Vec<u32>,
    /// Simulator shard count (1 = sequential, 0 = auto).
    shards: usize,
}

impl<'g> XinXiaSchedule<'g> {
    /// Compiles the schedule: BFS layering plus per-layer contention
    /// bounds.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] if `source` is out of bounds or
    /// the graph is not connected (the layering must span the graph
    /// for the pipeline to reach everyone).
    pub fn new(graph: &'g Graph, source: NodeId) -> Result<Self, CoreError> {
        let n = graph.node_count();
        if source.index() >= n {
            return Err(CoreError::InvalidParameter {
                reason: format!("source {source} out of bounds for {n} nodes"),
            });
        }
        let layers = BfsLayers::compute(graph, source);
        if !layers.spans_graph() {
            return Err(CoreError::InvalidParameter {
                reason: format!(
                    "graph is disconnected: only {} of {n} nodes reachable from {source}",
                    layers.reachable_count()
                ),
            });
        }
        let contention = contention_bounds(graph, &layers);
        Ok(XinXiaSchedule {
            graph,
            layers,
            contention,
            shards: 1,
        })
    }

    /// Sets the simulator shard count (1 = sequential, 0 = auto);
    /// results are bit-identical for any value.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// The compiled BFS layering.
    pub fn layers(&self) -> &BfsLayers {
        &self.layers
    }

    /// The contention bound `c_ℓ` of broadcasting layer `ℓ`.
    ///
    /// # Panics
    ///
    /// Panics if `layer ≥ layer_count`.
    pub fn contention(&self, layer: usize) -> u32 {
        self.contention[layer]
    }

    fn behaviors(&self) -> Vec<XinXiaNode> {
        let n = self.graph.node_count();
        (0..n)
            .map(|i| {
                let v = NodeId::from_index(i);
                let layer = self.layers.level(v).expect("schedule spans the graph");
                XinXiaNode {
                    layer,
                    slot_probability: 1.0 / f64::from(self.contention[layer as usize]),
                    informed: v == self.layers.source(),
                }
            })
            .collect()
    }

    /// Runs the schedule until every node is informed or `max_rounds`
    /// elapse.
    ///
    /// # Errors
    ///
    /// [`CoreError::Model`] for simulator configuration errors.
    pub fn run(
        &self,
        fault: Channel,
        seed: u64,
        max_rounds: u64,
    ) -> Result<BroadcastRun, CoreError> {
        Ok(self.run_profiled(fault, seed, max_rounds)?.0)
    }

    /// As [`XinXiaSchedule::run`], additionally returning the per-node
    /// [`LatencyProfile`] — the quantity this schedule optimizes.
    ///
    /// # Errors
    ///
    /// [`CoreError::Model`] for simulator configuration errors.
    pub fn run_profiled(
        &self,
        fault: Channel,
        seed: u64,
        max_rounds: u64,
    ) -> Result<(BroadcastRun, LatencyProfile), CoreError> {
        self.run_telemetry(fault, seed, max_rounds, &mut radio_obs::NullSink)
    }

    /// As [`XinXiaSchedule::run_profiled`], with per-phase telemetry:
    /// emits `schedule/setup` (behavior construction), `schedule/run`,
    /// and the engine's `engine/*` breakdown into `sink`. Results are
    /// bit-identical whatever sink is attached.
    ///
    /// # Errors
    ///
    /// [`CoreError::Model`] for simulator configuration errors.
    pub fn run_telemetry<S: radio_obs::TelemetrySink>(
        &self,
        fault: Channel,
        seed: u64,
        max_rounds: u64,
        sink: &mut S,
    ) -> Result<(BroadcastRun, LatencyProfile), CoreError> {
        let setup = radio_obs::SpanTimer::start(sink.enabled());
        let behaviors = self.behaviors();
        setup.stop(sink, "schedule/setup");
        crate::outcome::run_profiled_telemetry(
            self.graph,
            fault,
            behaviors,
            seed,
            max_rounds,
            self.shards,
            sink,
        )
    }
}

/// Per-layer contention bounds: `c_ℓ` = max over layer-`ℓ+1` nodes of
/// their layer-`ℓ` degree, clamped to ≥ 1 (the last layer has no
/// frontier but its nodes still broadcast for stragglers).
fn contention_bounds(graph: &Graph, layers: &BfsLayers) -> Vec<u32> {
    let mut bounds = vec![1u32; layers.layer_count()];
    for (l, bound) in bounds.iter_mut().enumerate() {
        let Some(next) = (l + 1 < layers.layer_count()).then(|| layers.layer(l + 1)) else {
            continue;
        };
        for &v in next {
            let in_prev = graph
                .neighbors(v)
                .iter()
                .filter(|&&u| layers.level(u) == Some(l as u32))
                .count() as u32;
            *bound = (*bound).max(in_prev);
        }
    }
    bounds
}

/// Per-node Xin–Xia behavior: broadcast (if informed) in rounds
/// `r ≡ layer (mod 3)` with the layer's slot probability.
#[derive(Debug, Clone)]
struct XinXiaNode {
    layer: u32,
    slot_probability: f64,
    informed: bool,
}

impl NodeBehavior<()> for XinXiaNode {
    fn act(&mut self, ctx: &mut Ctx<'_>) -> Action<()> {
        if !self.informed || ctx.round % 3 != u64::from(self.layer) % 3 {
            return Action::Listen;
        }
        if rand::Rng::gen_bool(ctx.rng, self.slot_probability) {
            Action::Broadcast(())
        } else {
            Action::Listen
        }
    }

    fn receive(&mut self, _ctx: &mut Ctx<'_>, rx: Reception<()>) {
        if rx.is_packet() {
            self.informed = true;
        }
    }

    fn decoded(&self) -> bool {
        self.informed
    }

    // Quiescence opt-in: an uninformed Xin–Xia node listens without
    // drawing (informed nodes still act — their slot gating is
    // round-dependent, which this hook cannot express).
    fn wants_poll(&self) -> bool {
        self.informed
    }

    // Silence never changes a Xin–Xia node (see `receive`), `act`
    // only reads the slot gate and draws, and there is no queue.
    const SILENCE_TRANSPARENT: bool = true;
}

/// The oblivious Xin–Xia pipeline as a faultless [`BaseSchedule`]:
/// deterministic, collision-free, and eligible for the §5.2 black-box
/// transforms.
///
/// Time is divided into *frames* of `3·W` rounds, `W` the largest BFS
/// layer. Within a frame, round `3·j + (ℓ mod 3)` belongs to the
/// `j`-th node of every layer `ℓ` with that residue — in-layer TDMA
/// inside the `mod 3` layer slots, so **no two broadcasting nodes ever
/// share a listener** (layers ≥ 3 apart cannot have common neighbors).
/// In frame `t`, layer `ℓ` broadcasts message `t − ℓ` (when
/// `0 ≤ t − ℓ < k`): message `m` enters the pipeline at frame `m` and
/// marches one layer per frame, so the schedule spans `k + D` frames —
/// `3·W·(k + D)` rounds, per-message latency `O(W·(m + d))` instead of
/// the sequential `O(W·k·d)`.
///
/// # Errors
///
/// [`CoreError::InvalidParameter`] if `k == 0`, the source is out of
/// bounds, or the graph is disconnected.
pub fn xin_xia_pipeline(
    graph: &Graph,
    source: NodeId,
    k: usize,
) -> Result<BaseSchedule, CoreError> {
    if k == 0 {
        return Err(CoreError::InvalidParameter {
            reason: "need at least one message".into(),
        });
    }
    let n = graph.node_count();
    if source.index() >= n {
        return Err(CoreError::InvalidParameter {
            reason: format!("source {source} out of bounds for {n} nodes"),
        });
    }
    let layers = BfsLayers::compute(graph, source);
    if !layers.spans_graph() {
        return Err(CoreError::InvalidParameter {
            reason: format!(
                "graph is disconnected: only {} of {n} nodes reachable from {source}",
                layers.reachable_count()
            ),
        });
    }
    let depth = layers.layer_count(); // D + 1
    let width = (0..depth).map(|l| layers.layer(l).len()).max().unwrap_or(1);
    let frame_len = 3 * width;
    let frames = k + depth - 1;
    let mut actions = vec![vec![None; n]; frames * frame_len];
    for (l, layer) in (0..depth).map(|l| (l, layers.layer(l))) {
        for (j, &v) in layer.iter().enumerate() {
            let slot = 3 * j + l % 3;
            for m in 0..k {
                let t = m + l; // frame in which layer l carries message m
                actions[t * frame_len + slot][v.index()] = Some(m);
            }
        }
    }
    Ok(BaseSchedule { k, actions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decay::Decay;
    use crate::transform::{CodingFaultTransform, SenderFaultRoutingTransform};
    use netgraph::generators;

    #[test]
    fn faultless_path_has_unit_per_hop_latency() {
        // On a path every contention bound is 1, so layer ℓ broadcasts
        // with probability 1 in its slot and node d first hears in
        // round d − 1: latency exactly d.
        let g = generators::path(32);
        let sched = XinXiaSchedule::new(&g, NodeId::new(0)).unwrap();
        assert!((0..32).all(|l| sched.contention(l) == 1));
        let (run, profile) = sched.run_profiled(Channel::faultless(), 3, 10_000).unwrap();
        assert_eq!(run.rounds, Some(31));
        for d in 1..32u32 {
            assert_eq!(profile.first_packet(NodeId::new(d)), Some(u64::from(d) - 1));
        }
    }

    #[test]
    fn noisy_path_latency_stays_linear_per_hop() {
        // Under receiver(p) each hop costs 3/(1−p) expected rounds —
        // constant, no log n factor. Check the far end's latency stays
        // within a generous constant of 3d/(1−p).
        let g = generators::path(64);
        let sched = XinXiaSchedule::new(&g, NodeId::new(0)).unwrap();
        let mut total = 0u64;
        for seed in 0..5 {
            let (run, profile) = sched
                .run_profiled(Channel::receiver(0.5).unwrap(), seed, 100_000)
                .unwrap();
            assert!(run.completed());
            total += profile.first_packet(NodeId::new(63)).unwrap() + 1;
        }
        let mean = total as f64 / 5.0;
        let expected = 3.0 * 63.0 / 0.5; // 378
        assert!(
            mean < 1.6 * expected,
            "far-end latency {mean} not O(d/(1−p)) (expected ≈ {expected})"
        );
    }

    #[test]
    fn beats_decay_latency_on_noisy_paths() {
        // The headline claim E14 measures: per-hop Θ(1) beats Decay's
        // per-hop Θ(log n) already at n = 64.
        let g = generators::path(64);
        let sched = XinXiaSchedule::new(&g, NodeId::new(0)).unwrap();
        let fault = Channel::receiver(0.5).unwrap();
        let (mut xin, mut decay) = (0u64, 0u64);
        for seed in 0..3 {
            xin += sched.run(fault, seed, 1_000_000).unwrap().rounds_used();
            decay += Decay::new()
                .run(&g, NodeId::new(0), fault, seed, 1_000_000)
                .unwrap()
                .rounds_used();
        }
        assert!(
            xin < decay,
            "Xin–Xia ({xin}) should beat Decay ({decay}) on the noisy path"
        );
    }

    #[test]
    fn mesh_contention_bounds_are_respected() {
        let g = generators::grid(6, 6);
        let sched = XinXiaSchedule::new(&g, NodeId::new(0)).unwrap();
        // A grid node has at most 2 previous-layer neighbors.
        for l in 0..sched.layers().layer_count() {
            assert!((1..=2).contains(&sched.contention(l)), "layer {l}");
        }
        let run = sched
            .run(Channel::receiver(0.4).unwrap(), 7, 1_000_000)
            .unwrap();
        assert!(run.completed());
    }

    #[test]
    fn random_meshes_complete_under_noise_and_erasures() {
        for seed in 0..3 {
            let g = generators::unit_disk_connected(80, 0.25, seed).unwrap();
            let sched = XinXiaSchedule::new(&g, NodeId::new(0)).unwrap();
            for fault in [
                Channel::receiver(0.5).unwrap(),
                Channel::erasure(0.5).unwrap(),
                Channel::sender(0.3).unwrap(),
            ] {
                let run = sched.run(fault, seed, 5_000_000).unwrap();
                assert!(
                    run.completed(),
                    "seed {seed} did not complete under {fault}"
                );
            }
        }
    }

    #[test]
    fn erasure_channel_matches_receiver_channel_per_seed() {
        // Xin–Xia is a noisy-model protocol: it only matches Packet,
        // so erasure(p) runs are bit-identical to receiver(p) runs.
        let g = generators::gnp_connected(48, 0.1, 9).unwrap();
        let sched = XinXiaSchedule::new(&g, NodeId::new(0)).unwrap();
        let (noisy, noisy_profile) = sched
            .run_profiled(Channel::receiver(0.5).unwrap(), 11, 1_000_000)
            .unwrap();
        let (erased, erased_profile) = sched
            .run_profiled(Channel::erasure(0.5).unwrap(), 11, 1_000_000)
            .unwrap();
        assert_eq!(noisy.rounds, erased.rounds);
        assert_eq!(noisy_profile, erased_profile);
    }

    #[test]
    fn sharded_runs_match_sequential() {
        let g = generators::unit_disk_connected(60, 0.3, 4).unwrap();
        let fault = Channel::receiver(0.4).unwrap();
        let reference = XinXiaSchedule::new(&g, NodeId::new(0))
            .unwrap()
            .run_profiled(fault, 13, 1_000_000)
            .unwrap();
        for shards in [2, 5] {
            let sharded = XinXiaSchedule::new(&g, NodeId::new(0))
                .unwrap()
                .with_shards(shards)
                .run_profiled(fault, 13, 1_000_000)
                .unwrap();
            assert_eq!(reference, sharded, "shards = {shards}");
        }
    }

    #[test]
    fn rejects_disconnected_graphs_and_bad_sources() {
        let g = Graph::from_edges(4, [(NodeId::new(0), NodeId::new(1))]).unwrap();
        assert!(matches!(
            XinXiaSchedule::new(&g, NodeId::new(0)),
            Err(CoreError::InvalidParameter { .. })
        ));
        let p = generators::path(4);
        assert!(XinXiaSchedule::new(&p, NodeId::new(9)).is_err());
        assert!(xin_xia_pipeline(&g, NodeId::new(0), 2).is_err());
        assert!(xin_xia_pipeline(&p, NodeId::new(0), 0).is_err());
        assert!(xin_xia_pipeline(&p, NodeId::new(9), 2).is_err());
    }

    #[test]
    fn oblivious_pipeline_validates_faultlessly_everywhere() {
        for (name, g) in [
            ("path", generators::path(10)),
            ("star", generators::star(8)),
            ("grid", generators::grid(4, 5)),
            ("gnp", generators::gnp_connected(24, 0.15, 2).unwrap()),
        ] {
            let base = xin_xia_pipeline(&g, NodeId::new(0), 5).unwrap();
            let trace = base.validate_faultless(&g, NodeId::new(0)).unwrap();
            assert!(trace.complete, "{name}: pipeline must deliver everything");
        }
    }

    #[test]
    fn oblivious_pipeline_generalizes_the_path_pipeline() {
        // On a path (W = 1) the frame structure reduces to the classic
        // 3-separated pipeline: 3(k + n − 1) rounds for k messages.
        let base = xin_xia_pipeline(&generators::path(8), NodeId::new(0), 4).unwrap();
        assert_eq!(base.round_count(), 3 * (4 + 8 - 1));
    }

    #[test]
    fn oblivious_pipeline_is_transform_eligible() {
        // The §5.2 black-box transforms accept the pipeline as-is:
        // routing under sender faults, coding under receiver faults.
        let g = generators::grid(3, 4);
        let base = xin_xia_pipeline(&g, NodeId::new(0), 3).unwrap();
        let routing = SenderFaultRoutingTransform {
            group_size: 96,
            eta: 0.5,
        };
        let run = routing.run(&g, &base, NodeId::new(0), 0.3, 5).unwrap();
        assert!(run.success, "routing transform must deliver everything");
        let trace = base.validate_faultless(&g, NodeId::new(0)).unwrap();
        let coding = CodingFaultTransform {
            group_size: 64,
            eta: 0.3,
        };
        let run = coding
            .run(&g, &base, &trace, Channel::receiver(0.4).unwrap(), 9)
            .unwrap();
        assert!(run.success, "coding transform must meet every quota");
    }
}
