//! Byzantine consensus workloads over the noisy broadcast primitive.
//!
//! The paper's protocols assume honest nodes and an adversarial
//! *channel*; this module adds adversarial *nodes* on top (the
//! [`radio_model::adversary`] layer) and asks the classic questions —
//! agreement, validity, termination — of two textbook protocols run
//! over the radio:
//!
//! * [`Brb`] — Bracha's Byzantine Reliable Broadcast (echo/ready
//!   quorums, safe for `f < n/3`);
//! * [`BenOr`] — randomized binary consensus in the
//!   Mostéfaoui–Moumen–Raynal style: BV-broadcast value justification
//!   plus a seeded common coin (safe for `f < n/3`).
//!
//! # Transport: authenticated gossip over the radio
//!
//! Both protocols are specified for reliable point-to-point links; a
//! noisy radio gives us half-duplex broadcast slots that collide and
//! drop. The transport here is Decay-style gossip: every node with a
//! non-empty message set broadcasts a [`Bundle`] of everything it has
//! accepted, with the Decay probability cycle
//! (`2^-((round mod L)+1)`) arbitrating the medium, and absorbs every
//! novel protocol message it hears. Messages carry their origin and
//! are *authenticated*: the adversary menu (crash / equivocate / jam)
//! can suppress, split, or drown messages but never forge another
//! node's — exactly the signed-gossip assumption under which Bracha
//! and Ben-Or quorum arithmetic is stated.
//!
//! Equivocation is the radio-specific subtlety: one broadcast slot is
//! physically a single transmission, so a two-faced sender must be
//! resolved *per listener* inside the engine's delivery sweep. The
//! [`GossipPacket`] payload does this through
//! [`radio_model::Payload::for_listener`]: an equivocating broadcast
//! carries two bundles (own-origin verbs flipped in one of them) and
//! each listener receives the side matching its node-id parity.

use std::sync::Arc;

use netgraph::NodeId;
use radio_model::{Action, AdversarialPayload, Ctx, Payload, SimStats};

use crate::decay::DecayNode;

mod ben_or;
mod brb;

pub use ben_or::{BenOr, BenOrNode};
pub use brb::{Brb, BrbNode};

/// Stream index for the Ben-Or common coin, disjoint from the engine's
/// per-node behavior streams (`0..n`), the channel-loss streams
/// (`≥ 2^63`), and the adversary selection stream (`2^62`).
pub(crate) const COIN_STREAM: u64 = (1 << 62) | 1;

/// A protocol verb, always carried with its origin in a
/// [`ConsensusMsg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// BRB: the designated source's proposal.
    Init {
        /// Proposed value.
        v: bool,
    },
    /// BRB: "I heard the source propose `v`".
    Echo {
        /// Echoed value.
        v: bool,
    },
    /// BRB: "a quorum vouches for `v`".
    Ready {
        /// Vouched value.
        v: bool,
    },
    /// Ben-Or: round-`r` estimate (BV-broadcast; a node may justify
    /// and relay both values of a round).
    Est {
        /// Protocol round (1-based).
        r: u32,
        /// Estimated value.
        v: bool,
    },
    /// Ben-Or: round-`r` auxiliary announcement of a justified value.
    Aux {
        /// Protocol round (1-based).
        r: u32,
        /// Announced value.
        v: bool,
    },
}

/// One authenticated protocol message: who said what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConsensusMsg {
    /// The node this message originates from (authenticated — the
    /// adversary menu cannot forge third-party origins).
    pub origin: u32,
    /// The protocol verb.
    pub verb: Verb,
}

impl ConsensusMsg {
    /// The same message with its boolean value flipped — what an
    /// equivocator tells the other half of its audience.
    fn flipped(self) -> Self {
        let verb = match self.verb {
            Verb::Init { v } => Verb::Init { v: !v },
            Verb::Echo { v } => Verb::Echo { v: !v },
            Verb::Ready { v } => Verb::Ready { v: !v },
            Verb::Est { r, v } => Verb::Est { r, v: !v },
            Verb::Aux { r, v } => Verb::Aux { r, v: !v },
        };
        ConsensusMsg {
            origin: self.origin,
            verb,
        }
    }
}

/// A gossip bundle: every message its sender has accepted so far,
/// shared so per-delivery clones stay cheap.
pub type Bundle = Arc<Vec<ConsensusMsg>>;

/// The radio payload of the consensus workloads.
#[derive(Debug, Clone, PartialEq)]
pub enum GossipPacket {
    /// An honest bundle: every listener hears the same messages.
    Honest(Bundle),
    /// An equivocating bundle pair: listeners receive `even` or `odd`
    /// by node-id parity (resolved by [`Payload::for_listener`] in the
    /// delivery sweep).
    Split {
        /// Bundle for even-id listeners.
        even: Bundle,
        /// Bundle for odd-id listeners (own-origin verbs flipped).
        odd: Bundle,
    },
    /// A jammer's junk transmission: occupies the slot, carries
    /// nothing.
    Jam,
}

impl Payload for GossipPacket {
    fn for_listener(&self, listener: NodeId) -> Self {
        match self {
            GossipPacket::Split { even, odd } => {
                let side = if listener.index() % 2 == 0 { even } else { odd };
                GossipPacket::Honest(side.clone())
            }
            other => other.clone(),
        }
    }
}

impl AdversarialPayload for GossipPacket {
    fn jam(_ctx: &mut Ctx<'_>) -> Self {
        GossipPacket::Jam
    }

    /// Splits the audience: even-id listeners hear the honest bundle,
    /// odd-id listeners hear it with this node's *own* verbs flipped.
    /// Third-party messages are relayed intact (authentication).
    fn equivocated(self, ctx: &mut Ctx<'_>) -> Self {
        match self {
            GossipPacket::Honest(bundle) => {
                let me = ctx.node.index() as u32;
                let odd: Vec<ConsensusMsg> = bundle
                    .iter()
                    .map(|m| if m.origin == me { m.flipped() } else { *m })
                    .collect();
                GossipPacket::Split {
                    even: bundle,
                    odd: Arc::new(odd),
                }
            }
            other => other,
        }
    }
}

/// The shared gossip transport state of one node: the accepted message
/// set (insertion-ordered, deterministic) and its cached bundle.
#[derive(Debug, Clone)]
pub(crate) struct Gossip {
    phase_len: u32,
    known: Vec<ConsensusMsg>,
    cache: Option<Bundle>,
}

impl Gossip {
    pub(crate) fn new(phase_len: u32) -> Self {
        Gossip {
            phase_len,
            known: Vec::new(),
            cache: None,
        }
    }

    /// Records an accepted message for relay.
    pub(crate) fn push(&mut self, msg: ConsensusMsg) {
        self.known.push(msg);
        self.cache = None;
    }

    /// The Decay-cycled gossip action: silent while uninformed,
    /// otherwise broadcast the full accepted set with probability
    /// `2^-((round mod L)+1)`.
    pub(crate) fn act(&mut self, ctx: &mut Ctx<'_>) -> Action<GossipPacket> {
        if self.known.is_empty() {
            return Action::Listen;
        }
        if DecayNode::draw_broadcast(self.phase_len, ctx.round, ctx.rng) {
            let bundle = self
                .cache
                .get_or_insert_with(|| Arc::new(self.known.clone()))
                .clone();
            Action::Broadcast(GossipPacket::Honest(bundle))
        } else {
            Action::Listen
        }
    }
}

/// The result of one consensus execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsensusRun {
    /// Rounds until every honest node decided, or `None` if the round
    /// budget ran out first.
    pub rounds: Option<u64>,
    /// Per-node decisions, indexed by node id; `None` for undecided
    /// and for faulty nodes (whose state is meaningless).
    pub decisions: Vec<Option<bool>>,
    /// Per-node honesty flags from the adversary assignment.
    pub honest: Vec<bool>,
    /// Aggregate channel statistics for the run.
    pub stats: SimStats,
}

impl ConsensusRun {
    /// Whether every honest node decided within the round budget.
    pub fn completed(&self) -> bool {
        self.rounds.is_some()
    }

    /// Agreement: no two honest nodes decided differently (vacuously
    /// true when fewer than two decided).
    pub fn agreement(&self) -> bool {
        let mut seen: Option<bool> = None;
        for (d, h) in self.decisions.iter().zip(&self.honest) {
            if let (Some(v), true) = (d, h) {
                match seen {
                    None => seen = Some(*v),
                    Some(w) if w != *v => return false,
                    Some(_) => {}
                }
            }
        }
        true
    }

    /// The common honest decision, if agreement holds and at least one
    /// honest node decided.
    pub fn decided_value(&self) -> Option<bool> {
        if !self.agreement() {
            return None;
        }
        self.decisions
            .iter()
            .zip(&self.honest)
            .find_map(|(d, h)| if *h { *d } else { None })
    }

    /// Honest nodes that decided.
    pub fn decided_count(&self) -> usize {
        self.decisions
            .iter()
            .zip(&self.honest)
            .filter(|(d, h)| **h && d.is_some())
            .count()
    }

    /// Honest nodes in total.
    pub fn honest_count(&self) -> usize {
        self.honest.iter().filter(|h| **h).count()
    }

    /// Validity against an expected value: every honest decision (and
    /// at least one) equals `expected`.
    pub fn valid_for(&self, expected: bool) -> bool {
        self.decided_count() > 0
            && self
                .decisions
                .iter()
                .zip(&self.honest)
                .all(|(d, h)| !*h || d.map_or(true, |v| v == expected))
    }
}

/// Bracha's echo quorum: `⌈(n + f + 1) / 2⌉` — any two quorums
/// intersect in an honest node for `f < n/3`.
pub(crate) fn echo_quorum(n: usize, f: usize) -> usize {
    (n + f + 2) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flipped_flips_every_verb_value() {
        for (verb, flipped) in [
            (Verb::Init { v: true }, Verb::Init { v: false }),
            (Verb::Echo { v: false }, Verb::Echo { v: true }),
            (Verb::Ready { v: true }, Verb::Ready { v: false }),
            (Verb::Est { r: 3, v: true }, Verb::Est { r: 3, v: false }),
            (Verb::Aux { r: 2, v: false }, Verb::Aux { r: 2, v: true }),
        ] {
            let m = ConsensusMsg { origin: 5, verb };
            assert_eq!(
                m.flipped(),
                ConsensusMsg {
                    origin: 5,
                    verb: flipped
                }
            );
        }
    }

    #[test]
    fn split_packet_resolves_by_listener_parity() {
        let even: Bundle = Arc::new(vec![ConsensusMsg {
            origin: 0,
            verb: Verb::Init { v: true },
        }]);
        let odd: Bundle = Arc::new(vec![ConsensusMsg {
            origin: 0,
            verb: Verb::Init { v: false },
        }]);
        let split = GossipPacket::Split {
            even: even.clone(),
            odd: odd.clone(),
        };
        assert_eq!(
            split.for_listener(NodeId::new(2)),
            GossipPacket::Honest(even.clone())
        );
        assert_eq!(
            split.for_listener(NodeId::new(3)),
            GossipPacket::Honest(odd)
        );
        // Honest and jam packets are parity-blind.
        let honest = GossipPacket::Honest(even);
        assert_eq!(honest.for_listener(NodeId::new(3)), honest);
        assert_eq!(
            GossipPacket::Jam.for_listener(NodeId::new(1)),
            GossipPacket::Jam
        );
    }

    #[test]
    fn agreement_and_validity_accessors() {
        let run = ConsensusRun {
            rounds: Some(10),
            decisions: vec![Some(true), Some(true), None, Some(false)],
            honest: vec![true, true, true, false],
            stats: SimStats::default(),
        };
        // The faulty node's conflicting "decision" is ignored.
        assert!(run.agreement());
        assert_eq!(run.decided_value(), Some(true));
        assert_eq!(run.decided_count(), 2);
        assert_eq!(run.honest_count(), 3);
        assert!(run.valid_for(true));
        assert!(!run.valid_for(false));
        assert!(run.completed());

        let split = ConsensusRun {
            rounds: None,
            decisions: vec![Some(true), Some(false)],
            honest: vec![true, true],
            stats: SimStats::default(),
        };
        assert!(!split.agreement());
        assert_eq!(split.decided_value(), None);
        assert!(!split.completed());
        assert!(!split.valid_for(true));
    }

    #[test]
    fn echo_quorum_majorities() {
        assert_eq!(echo_quorum(4, 1), 3);
        assert_eq!(echo_quorum(10, 3), 7);
        assert_eq!(echo_quorum(10, 0), 6);
        // Two quorums overlap in > f nodes whenever n > 3f.
        for n in 2..40 {
            for f in 0..n / 3 {
                let q = echo_quorum(n, f);
                assert!(2 * q > n + f, "quorum intersection ≤ f at n={n} f={f}");
                assert!(
                    q <= n - f,
                    "quorum unreachable by honest nodes at n={n} f={f}"
                );
            }
        }
    }
}
