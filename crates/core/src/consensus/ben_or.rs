//! Randomized binary Byzantine consensus over the noisy radio:
//! Ben-Or's round structure hardened with BV-broadcast value
//! justification and a seeded common coin, in the
//! Mostéfaoui–Moumen–Raynal style (exemplar lineage: the
//! kam3nskii/ConsensusProtocols SafeBBC harness).
//!
//! Per protocol round `r` (1-based), with estimate `est`:
//!
//! 1. **BV-broadcast**: send `Est(r, est)`. Relay `Est(r, v)` once `f+1`
//!    distinct origins vouch for `v` (so a value backed only by
//!    Byzantine nodes is never amplified); admit `v` to `bin_values`
//!    once `2f+1` origins vouch (so every admitted value was sent by an
//!    honest node).
//! 2. **Aux**: when `bin_values` first becomes non-empty, announce one
//!    admitted value with `Aux(r, w)`.
//! 3. **Commit**: wait for `n − f` aux announcements whose values are
//!    admitted. Let `vals` be those values, `c` the round's common
//!    coin. If `vals = {w}`: adopt `est = w` and *decide* `w` when
//!    `w = c`. If `vals = {0, 1}`: adopt `est = c`. Advance to `r + 1`.
//!
//! Safety holds for `f < n/3`; termination is probabilistic (each
//! unanimous round decides with probability ½ on the coin). The common
//! coin is the standard idealization, derived here from the run seed
//! on a dedicated fork stream so all nodes see the same coin and the
//! determinism contract holds. Decided nodes keep participating so
//! stragglers can finish; the run's `done` predicate stops the
//! simulator once every honest node has decided.

use netgraph::Graph;
use radio_model::{
    fork_seed, Action, Adversary, Channel, Ctx, LatencyProfile, NodeBehavior, Reception, Simulator,
};

use super::{Bundle, ConsensusMsg, ConsensusRun, Gossip, GossipPacket, Verb, COIN_STREAM};
use crate::decay::default_phase_len;
use crate::CoreError;

/// Configuration for Ben-Or consensus runs (mirrors
/// [`crate::decay::Decay`]: the phase length is the gossip knob,
/// `shards` a pure execution knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenOr {
    /// Gossip phase length override; `None` derives `⌈log₂ n⌉ + 1`.
    pub phase_len: Option<u32>,
    /// Simulator shard count (1 = sequential, 0 = auto); results are
    /// bit-identical for any value.
    pub shards: usize,
}

impl Default for BenOr {
    fn default() -> Self {
        BenOr {
            phase_len: None,
            shards: 1,
        }
    }
}

impl BenOr {
    /// Creates the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets an explicit gossip phase length (must be ≥ 1).
    pub fn with_phase_len(mut self, phase_len: u32) -> Self {
        self.phase_len = Some(phase_len);
        self
    }

    /// Sets the simulator shard count (1 = sequential, 0 = auto);
    /// results are bit-identical for any value.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Runs Ben-Or with one binary `input` per node, tolerating `f`
    /// Byzantine nodes, under `adversary`, until every honest node
    /// decides or `max_rounds` elapse.
    ///
    /// `f` is the protocol's *assumed* tolerance (it sizes the
    /// justification quorums); the adversary's actual corruption count
    /// may differ.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidParameter`] for an input vector of the
    ///   wrong length, `f > n − 2` (a node could then complete rounds
    ///   alone), a zero phase length, or an adversary sized for a
    ///   different node count;
    /// * [`CoreError::Model`] for simulator configuration errors.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        graph: &Graph,
        inputs: &[bool],
        f: usize,
        fault: Channel,
        adversary: &Adversary,
        seed: u64,
        max_rounds: u64,
    ) -> Result<ConsensusRun, CoreError> {
        Ok(self
            .run_profiled(graph, inputs, f, fault, adversary, seed, max_rounds)?
            .0)
    }

    /// As [`BenOr::run`], additionally returning the per-node
    /// [`LatencyProfile`] (decode-completion = decision rounds of the
    /// honest nodes).
    ///
    /// # Errors
    ///
    /// As [`BenOr::run`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_profiled(
        &self,
        graph: &Graph,
        inputs: &[bool],
        f: usize,
        fault: Channel,
        adversary: &Adversary,
        seed: u64,
        max_rounds: u64,
    ) -> Result<(ConsensusRun, LatencyProfile), CoreError> {
        let n = graph.node_count();
        if inputs.len() != n {
            return Err(CoreError::InvalidParameter {
                reason: format!("{} inputs for a graph of {n} nodes", inputs.len()),
            });
        }
        if n < 2 || f > n - 2 {
            return Err(CoreError::InvalidParameter {
                reason: format!(
                    "assumed tolerance f = {f} needs n − f ≥ 2 quorum partners (n = {n})"
                ),
            });
        }
        if adversary.node_count() != n {
            return Err(CoreError::InvalidParameter {
                reason: format!(
                    "adversary covers {} nodes, graph has {n}",
                    adversary.node_count()
                ),
            });
        }
        let phase_len = self.phase_len.unwrap_or_else(|| default_phase_len(n));
        if phase_len == 0 {
            return Err(CoreError::InvalidParameter {
                reason: "phase length must be ≥ 1".into(),
            });
        }
        let coin_seed = fork_seed(seed, COIN_STREAM);
        let behaviors: Vec<BenOrNode> = (0..n)
            .map(|i| BenOrNode::new(i as u32, n, f, inputs[i], coin_seed, phase_len))
            .collect();
        let honest = adversary.honest_mask();
        let wrapped = adversary.wrap(behaviors)?;
        let mut sim = Simulator::new(graph, fault, wrapped, seed)?.with_shards(self.shards);
        let done = {
            let honest = honest.clone();
            move |bs: &[radio_model::ByzantineNode<BenOrNode>]| {
                bs.iter()
                    .zip(&honest)
                    .all(|(b, h)| !*h || b.inner().decided_value().is_some())
            }
        };
        let rounds = sim.run_until(max_rounds, done);
        let decisions = sim
            .behaviors()
            .iter()
            .zip(&honest)
            .map(|(b, h)| if *h { b.inner().decided_value() } else { None })
            .collect();
        Ok((
            ConsensusRun {
                rounds,
                decisions,
                honest,
                stats: *sim.stats(),
            },
            sim.latency_profile(),
        ))
    }
}

/// Per-protocol-round bookkeeping: who vouched for what.
#[derive(Debug, Clone)]
struct RoundState {
    /// `est_seen[v][origin]`: origin sent `Est(r, v)` (both values per
    /// origin are legitimate — BV relay).
    est_seen: [Vec<bool>; 2],
    est_count: [usize; 2],
    /// First `Aux` value per origin.
    aux_from: Vec<Option<bool>>,
    aux_count: [usize; 2],
    /// Values admitted to `bin_values` (2f+1 distinct vouchers).
    bin: [bool; 2],
    /// The first admitted value — the one our `Aux` announces.
    first_bin: Option<bool>,
}

impl RoundState {
    fn new(n: usize) -> Self {
        RoundState {
            est_seen: [vec![false; n], vec![false; n]],
            est_count: [0; 2],
            aux_from: vec![None; n],
            aux_count: [0; 2],
            bin: [false; 2],
            first_bin: None,
        }
    }
}

/// Per-node Ben-Or state machine plus gossip transport. Exposed so
/// tests and the CLI can inspect a node after a run.
#[derive(Debug, Clone)]
pub struct BenOrNode {
    me: u32,
    n: usize,
    f: usize,
    /// Current protocol round (1-based).
    round: u32,
    est: bool,
    coin_seed: u64,
    decided: Option<bool>,
    /// Bookkeeping for rounds `1..=rounds.len()`, grown on demand.
    rounds: Vec<RoundState>,
    gossip: Gossip,
}

impl BenOrNode {
    /// Fresh node `me` of `n`, tolerating `f`, proposing `input`.
    pub fn new(me: u32, n: usize, f: usize, input: bool, coin_seed: u64, phase_len: u32) -> Self {
        let mut node = BenOrNode {
            me,
            n,
            f,
            round: 1,
            est: input,
            coin_seed,
            decided: None,
            rounds: Vec::new(),
            gossip: Gossip::new(phase_len),
        };
        node.emit(Verb::Est { r: 1, v: input });
        node.advance();
        node
    }

    /// The decided value, if this node has decided.
    pub fn decided_value(&self) -> Option<bool> {
        self.decided
    }

    /// The current protocol round (1-based; still advancing after a
    /// decision so stragglers can finish).
    pub fn protocol_round(&self) -> u32 {
        self.round
    }

    /// The round-`r` common coin: one seeded fork per round, identical
    /// at every node.
    fn coin(&self, r: u32) -> bool {
        fork_seed(self.coin_seed, u64::from(r)) & 1 == 1
    }

    fn ensure_round(&mut self, r: u32) {
        while self.rounds.len() < r as usize {
            self.rounds.push(RoundState::new(self.n));
        }
    }

    /// Emits an own-origin message: absorb it (own vouchers count) and
    /// queue it for gossip.
    fn emit(&mut self, verb: Verb) {
        let msg = ConsensusMsg {
            origin: self.me,
            verb,
        };
        if self.absorb(msg) {
            self.gossip.push(msg);
        }
    }

    /// Applies one message's bookkeeping; returns whether it was novel
    /// (and should be relayed). State transitions happen in
    /// [`Self::advance`], called once per ingested bundle.
    fn absorb(&mut self, msg: ConsensusMsg) -> bool {
        let origin = msg.origin as usize;
        if origin >= self.n {
            return false;
        }
        match msg.verb {
            Verb::Est { r, v } => {
                if r == 0 {
                    return false;
                }
                self.ensure_round(r);
                let rs = &mut self.rounds[r as usize - 1];
                let vi = usize::from(v);
                if rs.est_seen[vi][origin] {
                    return false;
                }
                rs.est_seen[vi][origin] = true;
                rs.est_count[vi] += 1;
                true
            }
            Verb::Aux { r, v } => {
                if r == 0 {
                    return false;
                }
                self.ensure_round(r);
                let rs = &mut self.rounds[r as usize - 1];
                if rs.aux_from[origin].is_some() {
                    return false;
                }
                rs.aux_from[origin] = Some(v);
                rs.aux_count[usize::from(v)] += 1;
                true
            }
            // BRB traffic is not ours; ignore.
            Verb::Init { .. } | Verb::Echo { .. } | Verb::Ready { .. } => false,
        }
    }

    /// Drives the current round as far as the accumulated messages
    /// allow: BV relays, `bin_values` admissions, the `Aux`
    /// announcement, and the commit step (possibly cascading through
    /// several rounds when future-round messages are already buffered).
    fn advance(&mut self) {
        loop {
            let r = self.round;
            self.ensure_round(r);
            let idx = r as usize - 1;
            let me = self.me as usize;

            // BV-broadcast: relay any value with f+1 vouchers (once),
            // admit any value with 2f+1.
            for v in [false, true] {
                let vi = usize::from(v);
                let relay = {
                    let rs = &self.rounds[idx];
                    rs.est_count[vi] >= self.f + 1 && !rs.est_seen[vi][me]
                };
                if relay {
                    self.emit(Verb::Est { r, v });
                }
                let rs = &mut self.rounds[idx];
                if rs.est_count[vi] >= 2 * self.f + 1 && !rs.bin[vi] {
                    rs.bin[vi] = true;
                    if rs.first_bin.is_none() {
                        rs.first_bin = Some(v);
                    }
                }
            }

            // Aux: announce the first admitted value, once.
            let announce = {
                let rs = &self.rounds[idx];
                match rs.first_bin {
                    Some(w) if rs.aux_from[me].is_none() => Some(w),
                    _ => None,
                }
            };
            if let Some(w) = announce {
                self.emit(Verb::Aux { r, v: w });
            }

            // Commit: n − f admitted-value aux announcements.
            let (vals0, vals1, enough) = {
                let rs = &self.rounds[idx];
                let valid = [0, 1]
                    .into_iter()
                    .map(|vi| if rs.bin[vi] { rs.aux_count[vi] } else { 0 })
                    .sum::<usize>();
                (
                    rs.bin[0] && rs.aux_count[0] > 0,
                    rs.bin[1] && rs.aux_count[1] > 0,
                    valid >= self.n - self.f,
                )
            };
            if !enough || (!vals0 && !vals1) {
                return;
            }
            let c = self.coin(r);
            if vals0 != vals1 {
                let w = vals1;
                self.est = w;
                if w == c && self.decided.is_none() {
                    self.decided = Some(w);
                }
            } else {
                self.est = c;
            }
            self.round = r + 1;
            self.ensure_round(self.round);
            let est = self.est;
            if !self.rounds[self.round as usize - 1].est_seen[usize::from(est)][me] {
                self.emit(Verb::Est {
                    r: self.round,
                    v: est,
                });
            }
        }
    }

    fn ingest(&mut self, bundle: &Bundle) {
        for &msg in bundle.iter() {
            if msg.origin != self.me && self.absorb(msg) {
                self.gossip.push(msg);
            }
        }
        self.advance();
    }
}

impl NodeBehavior<GossipPacket> for BenOrNode {
    fn act(&mut self, ctx: &mut Ctx<'_>) -> Action<GossipPacket> {
        self.gossip.act(ctx)
    }

    fn receive(&mut self, _ctx: &mut Ctx<'_>, rx: Reception<GossipPacket>) {
        match rx {
            Reception::Packet(GossipPacket::Honest(bundle)) => self.ingest(&bundle),
            _ => {}
        }
    }

    fn decoded(&self) -> bool {
        self.decided.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators;
    use radio_model::Misbehavior;

    fn complete(n: usize) -> Graph {
        generators::gnp_connected(n, 1.0, 0).unwrap()
    }

    #[test]
    fn unanimous_inputs_decide_that_value() {
        let g = complete(7);
        for value in [false, true] {
            let run = BenOr::new()
                .run(
                    &g,
                    &vec![value; 7],
                    2,
                    Channel::faultless(),
                    &Adversary::honest(7),
                    42,
                    50_000,
                )
                .unwrap();
            assert!(run.completed(), "unanimous Ben-Or must terminate");
            assert!(run.agreement());
            assert!(run.valid_for(value), "decisions {:?}", run.decisions);
        }
    }

    #[test]
    fn mixed_inputs_agree() {
        let g = complete(8);
        for seed in 0..4 {
            let inputs: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
            let run = BenOr::new()
                .run(
                    &g,
                    &inputs,
                    2,
                    Channel::faultless(),
                    &Adversary::honest(8),
                    seed,
                    100_000,
                )
                .unwrap();
            assert!(run.completed(), "seed {seed}");
            assert!(run.agreement(), "seed {seed}: {:?}", run.decisions);
            assert_eq!(run.decided_count(), 8);
        }
    }

    #[test]
    fn noisy_path_still_agrees() {
        let g = generators::path(10);
        let inputs: Vec<bool> = (0..10).map(|i| i < 5).collect();
        let run = BenOr::new()
            .run(
                &g,
                &inputs,
                3,
                Channel::receiver(0.3).unwrap(),
                &Adversary::honest(10),
                9,
                500_000,
            )
            .unwrap();
        assert!(run.completed());
        assert!(run.agreement());
    }

    #[test]
    fn equivocators_cannot_break_agreement() {
        let g = complete(10);
        let adversary = Adversary::seeded(10, 3, Misbehavior::Equivocate, 4, &[]).unwrap();
        for seed in 0..5 {
            let inputs: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
            let run = BenOr::new()
                .run(
                    &g,
                    &inputs,
                    3,
                    Channel::faultless(),
                    &adversary,
                    seed,
                    200_000,
                )
                .unwrap();
            assert!(run.agreement(), "seed {seed}: {:?}", run.decisions);
        }
    }

    #[test]
    fn unanimous_honest_inputs_survive_byzantine_minority() {
        // All honest nodes propose `true`; 3 jammers cannot flip it.
        let g = complete(10);
        let adversary = Adversary::seeded(10, 3, Misbehavior::Jam, 8, &[]).unwrap();
        let run = BenOr::new()
            .run(
                &g,
                &vec![true; 10],
                3,
                Channel::faultless(),
                &adversary,
                21,
                500_000,
            )
            .unwrap();
        assert!(run.completed());
        assert!(run.valid_for(true), "decisions {:?}", run.decisions);
    }

    #[test]
    fn sharded_runs_are_bit_identical() {
        let g = generators::path(9);
        let adversary = Adversary::seeded(9, 2, Misbehavior::Crash { round: 6 }, 3, &[]).unwrap();
        let inputs: Vec<bool> = (0..9).map(|i| i % 3 == 0).collect();
        let base = BenOr::new()
            .run(
                &g,
                &inputs,
                2,
                Channel::erasure(0.2).unwrap(),
                &adversary,
                11,
                500_000,
            )
            .unwrap();
        for shards in [2, 4, 5] {
            let sharded = BenOr::new()
                .with_shards(shards)
                .run(
                    &g,
                    &inputs,
                    2,
                    Channel::erasure(0.2).unwrap(),
                    &adversary,
                    11,
                    500_000,
                )
                .unwrap();
            assert_eq!(base, sharded, "shards = {shards}");
        }
    }

    #[test]
    fn parameter_validation() {
        let g = complete(4);
        let adv = Adversary::honest(4);
        let ben_or = BenOr::new();
        assert!(matches!(
            ben_or.run(&g, &[true; 3], 1, Channel::faultless(), &adv, 0, 10),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(matches!(
            ben_or.run(&g, &[true; 4], 3, Channel::faultless(), &adv, 0, 10),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(matches!(
            ben_or.run(
                &g,
                &[true; 4],
                1,
                Channel::faultless(),
                &Adversary::honest(5),
                0,
                10
            ),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(matches!(
            BenOr::new().with_phase_len(0).run(
                &g,
                &[true; 4],
                1,
                Channel::faultless(),
                &adv,
                0,
                10
            ),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn budget_exhaustion_reports_none() {
        let g = generators::path(8);
        let run = BenOr::new()
            .run(
                &g,
                &[true; 8],
                2,
                Channel::faultless(),
                &Adversary::honest(8),
                1,
                2,
            )
            .unwrap();
        assert!(!run.completed());
    }
}
