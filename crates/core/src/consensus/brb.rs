//! Bracha's Byzantine Reliable Broadcast over the noisy radio
//! (exemplar lineage: Bracha 1987; the kam3nskii/ConsensusProtocols
//! BRB harness).
//!
//! A designated source proposes a bit; every honest node must deliver
//! the *same* bit (agreement), and the source's bit if the source is
//! honest (validity), despite up to `f < n/3` Byzantine nodes:
//!
//! 1. the source sends `Init(v)`;
//! 2. on the first `Init(v)` from the source, a node sends `Echo(v)`;
//! 3. on `⌈(n+f+1)/2⌉` echoes for `v` — or `f+1` readies for `v`
//!    (amplification) — a node sends `Ready(v)` (once);
//! 4. on `2f+1` readies for `v`, a node delivers `v`.
//!
//! A node accepts at most one `Init` (source only), one `Echo` and one
//! `Ready` per origin — first wins — so an equivocator's two-faced
//! messages split its vote but never double it.

use netgraph::{Graph, NodeId};
use radio_model::{
    Action, Adversary, Channel, Ctx, LatencyProfile, NodeBehavior, Reception, Simulator,
};

use super::{echo_quorum, Bundle, ConsensusMsg, ConsensusRun, Gossip, GossipPacket, Verb};
use crate::decay::default_phase_len;
use crate::CoreError;

/// Configuration for Bracha BRB runs (mirrors [`crate::decay::Decay`]:
/// the phase length is the gossip knob, `shards` a pure execution
/// knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Brb {
    /// Gossip phase length override; `None` derives `⌈log₂ n⌉ + 1`.
    pub phase_len: Option<u32>,
    /// Simulator shard count (1 = sequential, 0 = auto); results are
    /// bit-identical for any value.
    pub shards: usize,
}

impl Default for Brb {
    fn default() -> Self {
        Brb {
            phase_len: None,
            shards: 1,
        }
    }
}

impl Brb {
    /// Creates the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets an explicit gossip phase length (must be ≥ 1).
    pub fn with_phase_len(mut self, phase_len: u32) -> Self {
        self.phase_len = Some(phase_len);
        self
    }

    /// Sets the simulator shard count (1 = sequential, 0 = auto);
    /// results are bit-identical for any value.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Runs BRB from `source` proposing `value`, tolerating `f`
    /// Byzantine nodes, under `adversary`, until every honest node
    /// delivers or `max_rounds` elapse.
    ///
    /// `f` is the protocol's *assumed* tolerance (it sizes the
    /// quorums); the adversary's actual corruption count may differ —
    /// sweeping one against the other is exactly what E16 measures.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidParameter`] for an out-of-range source,
    ///   `f ≥ n`, a zero phase length, or an adversary sized for a
    ///   different node count;
    /// * [`CoreError::Model`] for simulator configuration errors.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        graph: &Graph,
        source: NodeId,
        value: bool,
        f: usize,
        fault: Channel,
        adversary: &Adversary,
        seed: u64,
        max_rounds: u64,
    ) -> Result<ConsensusRun, CoreError> {
        Ok(self
            .run_profiled(graph, source, value, f, fault, adversary, seed, max_rounds)?
            .0)
    }

    /// As [`Brb::run`], additionally returning the per-node
    /// [`LatencyProfile`] (decode-completion = delivery rounds of the
    /// honest nodes).
    ///
    /// # Errors
    ///
    /// As [`Brb::run`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_profiled(
        &self,
        graph: &Graph,
        source: NodeId,
        value: bool,
        f: usize,
        fault: Channel,
        adversary: &Adversary,
        seed: u64,
        max_rounds: u64,
    ) -> Result<(ConsensusRun, LatencyProfile), CoreError> {
        let n = graph.node_count();
        if source.index() >= n {
            return Err(CoreError::InvalidParameter {
                reason: format!("source {source} out of bounds for {n} nodes"),
            });
        }
        if f >= n {
            return Err(CoreError::InvalidParameter {
                reason: format!("assumed tolerance f = {f} must be < n = {n}"),
            });
        }
        if adversary.node_count() != n {
            return Err(CoreError::InvalidParameter {
                reason: format!(
                    "adversary covers {} nodes, graph has {n}",
                    adversary.node_count()
                ),
            });
        }
        let phase_len = self.phase_len.unwrap_or_else(|| default_phase_len(n));
        if phase_len == 0 {
            return Err(CoreError::InvalidParameter {
                reason: "phase length must be ≥ 1".into(),
            });
        }
        let behaviors: Vec<BrbNode> = (0..n)
            .map(|i| BrbNode::new(i as u32, n, f, source.index() as u32, value, phase_len))
            .collect();
        let honest = adversary.honest_mask();
        let wrapped = adversary.wrap(behaviors)?;
        let mut sim = Simulator::new(graph, fault, wrapped, seed)?.with_shards(self.shards);
        let done = {
            let honest = honest.clone();
            move |bs: &[radio_model::ByzantineNode<BrbNode>]| {
                bs.iter()
                    .zip(&honest)
                    .all(|(b, h)| !*h || b.inner().decided_value().is_some())
            }
        };
        let rounds = sim.run_until(max_rounds, done);
        let decisions = sim
            .behaviors()
            .iter()
            .zip(&honest)
            .map(|(b, h)| if *h { b.inner().decided_value() } else { None })
            .collect();
        Ok((
            ConsensusRun {
                rounds,
                decisions,
                honest,
                stats: *sim.stats(),
            },
            sim.latency_profile(),
        ))
    }
}

/// Per-node Bracha state machine plus gossip transport. Exposed so
/// tests and the CLI can inspect a node after a run.
#[derive(Debug, Clone)]
pub struct BrbNode {
    me: u32,
    f: usize,
    source: u32,
    gossip: Gossip,
    /// First accepted `Init` value (source origin only).
    init_seen: Option<bool>,
    /// First accepted `Echo` value per origin.
    echo_from: Vec<Option<bool>>,
    /// First accepted `Ready` value per origin.
    ready_from: Vec<Option<bool>>,
    echo_count: [usize; 2],
    ready_count: [usize; 2],
    echoed: bool,
    readied: bool,
    delivered: Option<bool>,
    echo_q: usize,
}

impl BrbNode {
    /// Fresh node `me` of `n`, tolerating `f`, with the designated
    /// `source` proposing `value`.
    pub fn new(me: u32, n: usize, f: usize, source: u32, value: bool, phase_len: u32) -> Self {
        let mut node = BrbNode {
            me,
            f,
            source,
            gossip: Gossip::new(phase_len),
            init_seen: None,
            echo_from: vec![None; n],
            ready_from: vec![None; n],
            echo_count: [0; 2],
            ready_count: [0; 2],
            echoed: false,
            readied: false,
            delivered: None,
            echo_q: echo_quorum(n, f),
        };
        if me == source {
            node.emit(Verb::Init { v: value });
        }
        node
    }

    /// The delivered value, if this node has delivered.
    pub fn decided_value(&self) -> Option<bool> {
        self.delivered
    }

    /// Emits an own-origin message: absorb it (own votes count) and
    /// queue it for gossip.
    fn emit(&mut self, verb: Verb) {
        let msg = ConsensusMsg {
            origin: self.me,
            verb,
        };
        if self.absorb(msg) {
            self.gossip.push(msg);
        }
    }

    /// Applies one message; returns whether it was novel (and should
    /// be relayed). Cascading own messages are emitted recursively —
    /// the chain is bounded (Echo then Ready then delivery).
    fn absorb(&mut self, msg: ConsensusMsg) -> bool {
        let origin = msg.origin as usize;
        if origin >= self.echo_from.len() {
            return false;
        }
        match msg.verb {
            Verb::Init { v } => {
                if msg.origin != self.source || self.init_seen.is_some() {
                    return false;
                }
                self.init_seen = Some(v);
                if !self.echoed {
                    self.echoed = true;
                    self.emit(Verb::Echo { v });
                }
                true
            }
            Verb::Echo { v } => {
                if self.echo_from[origin].is_some() {
                    return false;
                }
                self.echo_from[origin] = Some(v);
                self.echo_count[usize::from(v)] += 1;
                if self.echo_count[usize::from(v)] >= self.echo_q && !self.readied {
                    self.readied = true;
                    self.emit(Verb::Ready { v });
                }
                true
            }
            Verb::Ready { v } => {
                if self.ready_from[origin].is_some() {
                    return false;
                }
                self.ready_from[origin] = Some(v);
                self.ready_count[usize::from(v)] += 1;
                if self.ready_count[usize::from(v)] >= self.f + 1 && !self.readied {
                    self.readied = true;
                    self.emit(Verb::Ready { v });
                }
                if self.ready_count[usize::from(v)] >= 2 * self.f + 1 && self.delivered.is_none() {
                    self.delivered = Some(v);
                }
                true
            }
            // Ben-Or traffic is not ours; ignore (the workloads never
            // share a run, but the type space is shared).
            Verb::Est { .. } | Verb::Aux { .. } => false,
        }
    }

    fn ingest(&mut self, bundle: &Bundle) {
        for &msg in bundle.iter() {
            if msg.origin != self.me && self.absorb(msg) {
                self.gossip.push(msg);
            }
        }
    }
}

impl NodeBehavior<GossipPacket> for BrbNode {
    fn act(&mut self, ctx: &mut Ctx<'_>) -> Action<GossipPacket> {
        self.gossip.act(ctx)
    }

    fn receive(&mut self, _ctx: &mut Ctx<'_>, rx: Reception<GossipPacket>) {
        match rx {
            Reception::Packet(GossipPacket::Honest(bundle)) => self.ingest(&bundle),
            // A Split packet is resolved to Honest by the engine's
            // for_listener; junk and non-packet slots carry nothing.
            _ => {}
        }
    }

    fn decoded(&self) -> bool {
        self.delivered.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators;
    use radio_model::Misbehavior;

    fn complete(n: usize) -> Graph {
        generators::gnp_connected(n, 1.0, 0).unwrap()
    }

    #[test]
    fn faultless_honest_delivery() {
        let g = complete(7);
        let run = Brb::new()
            .run(
                &g,
                NodeId::new(0),
                true,
                2,
                Channel::faultless(),
                &Adversary::honest(7),
                42,
                20_000,
            )
            .unwrap();
        assert!(run.completed(), "honest BRB must terminate");
        assert!(run.agreement());
        assert!(run.valid_for(true), "decisions {:?}", run.decisions);
        assert_eq!(run.decided_count(), 7);
    }

    #[test]
    fn star_and_path_deliver_under_noise() {
        for g in [generators::star(9), generators::path(10)] {
            let run = Brb::new()
                .run(
                    &g,
                    NodeId::new(0),
                    false,
                    3,
                    Channel::receiver(0.3).unwrap(),
                    &Adversary::honest(10),
                    7,
                    200_000,
                )
                .unwrap();
            assert!(run.completed());
            assert!(run.valid_for(false));
        }
    }

    #[test]
    fn equivocating_source_cannot_split_honest_nodes() {
        // n = 10, f = 3: the equivocating source splits its audience,
        // but the echo quorum ⌈(n+f+1)/2⌉ = 7 forces a single value.
        let g = complete(10);
        let adversary = Adversary::new(
            (0..10)
                .map(|i| (i == 0).then_some(Misbehavior::Equivocate))
                .collect(),
        );
        for seed in 0..5 {
            let run = Brb::new()
                .run(
                    &g,
                    NodeId::new(0),
                    true,
                    3,
                    Channel::faultless(),
                    &adversary,
                    seed,
                    50_000,
                )
                .unwrap();
            assert!(run.agreement(), "seed {seed}: {:?}", run.decisions);
        }
    }

    #[test]
    fn crash_faulty_nodes_do_not_block_delivery() {
        let g = complete(10);
        let adversary =
            Adversary::seeded(10, 3, Misbehavior::Crash { round: 4 }, 9, &[NodeId::new(0)])
                .unwrap();
        let run = Brb::new()
            .run(
                &g,
                NodeId::new(0),
                true,
                3,
                Channel::faultless(),
                &adversary,
                3,
                50_000,
            )
            .unwrap();
        assert!(run.completed(), "f = 3 crashes with n = 10 must not block");
        assert!(run.valid_for(true));
        assert_eq!(run.decided_count(), 7);
    }

    #[test]
    fn sharded_runs_are_bit_identical() {
        let g = generators::path(12);
        let adversary = Adversary::seeded(12, 2, Misbehavior::Jam, 5, &[NodeId::new(0)]).unwrap();
        let base = Brb::new()
            .run(
                &g,
                NodeId::new(0),
                true,
                2,
                Channel::erasure(0.2).unwrap(),
                &adversary,
                11,
                200_000,
            )
            .unwrap();
        for shards in [2, 3, 5] {
            let sharded = Brb::new()
                .with_shards(shards)
                .run(
                    &g,
                    NodeId::new(0),
                    true,
                    2,
                    Channel::erasure(0.2).unwrap(),
                    &adversary,
                    11,
                    200_000,
                )
                .unwrap();
            assert_eq!(base, sharded, "shards = {shards}");
        }
    }

    #[test]
    fn parameter_validation() {
        let g = complete(4);
        let adv = Adversary::honest(4);
        let brb = Brb::new();
        assert!(matches!(
            brb.run(
                &g,
                NodeId::new(9),
                true,
                1,
                Channel::faultless(),
                &adv,
                0,
                10
            ),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(matches!(
            brb.run(
                &g,
                NodeId::new(0),
                true,
                4,
                Channel::faultless(),
                &adv,
                0,
                10
            ),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(matches!(
            brb.run(
                &g,
                NodeId::new(0),
                true,
                1,
                Channel::faultless(),
                &Adversary::honest(5),
                0,
                10
            ),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(matches!(
            Brb::new().with_phase_len(0).run(
                &g,
                NodeId::new(0),
                true,
                1,
                Channel::faultless(),
                &adv,
                0,
                10
            ),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn budget_exhaustion_reports_none() {
        let g = generators::path(10);
        let run = Brb::new()
            .run(
                &g,
                NodeId::new(0),
                true,
                3,
                Channel::faultless(),
                &Adversary::honest(10),
                1,
                3,
            )
            .unwrap();
        assert!(!run.completed());
    }
}
