//! The Decay broadcast algorithm (Bar-Yehuda, Goldreich, Itai 1992;
//! paper §3.4.1).
//!
//! Rounds are grouped into phases of `L = ⌈log₂ n⌉ + 1` rounds. In the
//! `i`-th round of a phase (`i = 1..=L`) every *informed* node
//! broadcasts the message independently with probability `2^{-i}`.
//! Whatever the number of informed neighbors a node has, some round of
//! the phase has a broadcast probability near the inverse of that
//! count, so an uninformed node with an informed neighbor becomes
//! informed with constant probability per phase (Lemma 5).
//!
//! Decay needs no topology knowledge and — the paper's Lemma 9 — keeps
//! its guarantees under both sender and receiver faults, slowed only
//! by the `1/(1-p)` fault factor:
//! `O((log n / (1-p)) · (D + log n + log 1/δ))` rounds.

use netgraph::{Graph, NodeId};
use radio_model::{Action, Channel, Ctx, LatencyProfile, NodeBehavior, Reception};

use crate::{BroadcastRun, CoreError};

/// Configuration for [`Decay`].
///
/// The algorithmic knob is the phase length; `None` (default) derives
/// `⌈log₂ n⌉ + 1` from the graph at run time. `shards` is a pure
/// execution knob: it is forwarded to
/// [`radio_model::Simulator::with_shards`] and never changes measured results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decay {
    /// Phase length override; `None` derives `⌈log₂ n⌉ + 1`.
    pub phase_len: Option<u32>,
    /// Simulator shard count (1 = sequential, 0 = auto); see
    /// [`radio_model::Simulator::with_shards`].
    pub shards: usize,
}

impl Default for Decay {
    /// Derived phase length, sequential engine.
    fn default() -> Self {
        Decay {
            phase_len: None,
            shards: 1,
        }
    }
}

impl Decay {
    /// Creates the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets an explicit phase length (must be ≥ 1).
    pub fn with_phase_len(mut self, phase_len: u32) -> Self {
        self.phase_len = Some(phase_len);
        self
    }

    /// Sets the simulator shard count (1 = sequential, 0 = auto);
    /// results are bit-identical for any value.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// The phase length used for an `n`-node graph.
    pub fn effective_phase_len(&self, n: usize) -> u32 {
        self.phase_len.unwrap_or_else(|| default_phase_len(n))
    }

    /// Runs single-message Decay from `source` until every node is
    /// informed or `max_rounds` elapse.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidParameter`] if an explicit phase length is 0;
    /// * [`CoreError::Model`] for simulator configuration errors.
    pub fn run(
        &self,
        graph: &Graph,
        source: NodeId,
        fault: Channel,
        seed: u64,
        max_rounds: u64,
    ) -> Result<BroadcastRun, CoreError> {
        Ok(self.run_profiled(graph, source, fault, seed, max_rounds)?.0)
    }

    /// As [`Decay::run`], additionally returning the per-node
    /// [`LatencyProfile`] (first-delivery and decode-completion
    /// rounds).
    ///
    /// # Errors
    ///
    /// As [`Decay::run`].
    pub fn run_profiled(
        &self,
        graph: &Graph,
        source: NodeId,
        fault: Channel,
        seed: u64,
        max_rounds: u64,
    ) -> Result<(BroadcastRun, LatencyProfile), CoreError> {
        self.run_telemetry(
            graph,
            source,
            fault,
            seed,
            max_rounds,
            &mut radio_obs::NullSink,
        )
    }

    /// As [`Decay::run_profiled`], with per-phase telemetry: emits a
    /// `schedule/setup` span (behavior construction), a `schedule/run`
    /// span, and the engine's `engine/*` breakdown into `sink`. The
    /// returned results are bit-identical whatever sink is attached.
    ///
    /// # Errors
    ///
    /// As [`Decay::run`].
    pub fn run_telemetry<S: radio_obs::TelemetrySink>(
        &self,
        graph: &Graph,
        source: NodeId,
        fault: Channel,
        seed: u64,
        max_rounds: u64,
        sink: &mut S,
    ) -> Result<(BroadcastRun, LatencyProfile), CoreError> {
        let n = graph.node_count();
        if source.index() >= n {
            return Err(CoreError::InvalidParameter {
                reason: format!("source {source} out of bounds for {n} nodes"),
            });
        }
        let phase_len = self.effective_phase_len(n);
        if phase_len == 0 {
            return Err(CoreError::InvalidParameter {
                reason: "phase length must be ≥ 1".into(),
            });
        }
        let setup = radio_obs::SpanTimer::start(sink.enabled());
        let behaviors: Vec<DecayNode> = (0..n)
            .map(|i| DecayNode {
                informed: i == source.index(),
                phase_len,
            })
            .collect();
        setup.stop(sink, "schedule/setup");
        crate::outcome::run_profiled_telemetry(
            graph,
            fault,
            behaviors,
            seed,
            max_rounds,
            self.shards,
            sink,
        )
    }

    /// Runs Decay for exactly `budget` rounds and reports whether the
    /// broadcast finished — the *fixed-length, failure-probability*
    /// form in which Lemmas 6 and 9 are stated (`δ` is the probability
    /// this returns `false` for a `Θ((log n/(1−p))(D + log n + log 1/δ))`
    /// budget).
    ///
    /// # Errors
    ///
    /// As [`Decay::run`].
    pub fn run_fixed(
        &self,
        graph: &Graph,
        source: NodeId,
        fault: Channel,
        seed: u64,
        budget: u64,
    ) -> Result<bool, CoreError> {
        Ok(self.run(graph, source, fault, seed, budget)?.completed())
    }

    /// Monte-Carlo estimate of the failure probability `δ` of the
    /// fixed-length schedule with the given round `budget`.
    ///
    /// # Errors
    ///
    /// As [`Decay::run`].
    pub fn failure_rate(
        &self,
        graph: &Graph,
        source: NodeId,
        fault: Channel,
        budget: u64,
        trials: u64,
        seed0: u64,
    ) -> Result<f64, CoreError> {
        let mut failures = 0u64;
        for t in 0..trials {
            if !self.run_fixed(graph, source, fault, seed0 + t, budget)? {
                failures += 1;
            }
        }
        Ok(failures as f64 / trials as f64)
    }
}

/// Derives the canonical phase length `⌈log₂ n⌉ + 1`.
pub fn default_phase_len(n: usize) -> u32 {
    (usize::BITS - (n.max(2) - 1).leading_zeros()) + 1
}

/// `⌈2⁶⁴/L⌉` for `L` in `2..=64`, indexed by `L`: the magic
/// reciprocals behind [`phase_step`]'s division-free modulo. Built at
/// compile time; entries 0 and 1 are unused padding (`⌈2⁶⁴/1⌉`
/// overflows, and `step mod 1` needs no reciprocal).
const PHASE_RECIP: [u64; 65] = {
    let mut t = [0u64; 65];
    let mut l = 2u64;
    while l <= 64 {
        // ⌈2⁶⁴/l⌉ without 128-bit arithmetic: ⌊(2⁶⁴−1)/l⌋ + 1 (equal
        // whether or not l divides 2⁶⁴, since only powers of two do
        // and for those ⌊(2⁶⁴−1)/l⌋ = 2⁶⁴/l − 1).
        t[l as usize] = u64::MAX / l + 1;
        l += 1;
    }
    t
};

/// `step mod phase_len`, division-free for the phase lengths that
/// occur in practice (`⌈log₂ n⌉ + 1 ≤ 64` up to astronomical n).
///
/// Every informed node evaluates this each round, and a runtime `u64`
/// modulo is the single most expensive instruction on that path. The
/// multiply-shift `⌊step·⌈2⁶⁴/L⌉ / 2⁶⁴⌋ = ⌊step/L⌋` is exact whenever
/// `step·(L·⌈2⁶⁴/L⌉ − 2⁶⁴) < 2⁶⁴`, which holds comfortably for every
/// reachable round count (`step < 2⁵⁷` suffices for `L ≤ 64`).
#[inline]
fn phase_step(phase_len: u32, step: u64) -> u64 {
    let l = u64::from(phase_len);
    if !(2..PHASE_RECIP.len()).contains(&(phase_len as usize)) || step >= 1 << 57 {
        return step % l;
    }
    let q = ((u128::from(step) * u128::from(PHASE_RECIP[phase_len as usize])) >> 64) as u64;
    let r = step - q * l;
    debug_assert_eq!(r, step % l);
    r
}

/// Per-node Decay state machine. Exposed so other algorithms (FASTBC's
/// slow rounds) and the multi-message variants can reuse the step rule.
#[derive(Debug, Clone)]
pub struct DecayNode {
    /// Whether this node holds the message.
    pub informed: bool,
    /// Phase length `L`.
    pub phase_len: u32,
}

impl DecayNode {
    /// The Decay broadcast probability for (0-based) `step` within the
    /// phase structure: `2^{-((step mod L) + 1)}`.
    pub fn broadcast_probability(phase_len: u32, step: u64) -> f64 {
        let i = phase_step(phase_len, step) + 1;
        // 2^-i built directly as an IEEE-754 exponent: every informed
        // node evaluates this each round, and `powi` compiles to a
        // multiplication loop. Exact powers of two, so bit-identical
        // to `0.5f64.powi(i)` (both are exact for i ≤ 1022; phases are
        // orders of magnitude shorter).
        debug_assert!(i <= 1022, "phase step would denormalize 2^-i");
        f64::from_bits((1023 - i) << 52)
    }

    /// Performs the Decay coin flip for `step`: bit-identical to
    /// `gen_bool(broadcast_probability(phase_len, step))`, as a single
    /// integer comparison.
    ///
    /// `gen_bool(p)` samples an `f64` as `(next_u64() >> 11)·2⁻⁵³` and
    /// compares it against `p`; for `p = 2⁻ⁱ` with `1 ≤ i ≤ 53` both
    /// sides are exact, so the comparison is precisely
    /// `(next_u64() >> 11) < 2^(53−i)`. Same stream consumption, same
    /// outcome, no float traffic — this is the hottest line of every
    /// Decay-family sweep.
    pub fn draw_broadcast<R: rand::RngCore>(phase_len: u32, step: u64, rng: &mut R) -> bool {
        // One predictable guard covers the reciprocal table, the
        // multiply-shift exactness bound, and the i ≤ 53 threshold
        // exactness all at once (L ≤ 54 ⇒ i ≤ 54 needs the extra
        // check only at the boundary).
        if (2..=53).contains(&phase_len) && step < 1 << 57 {
            let l = u64::from(phase_len);
            let q = ((u128::from(step) * u128::from(PHASE_RECIP[phase_len as usize])) >> 64) as u64;
            let i = step - q * l + 1;
            debug_assert_eq!(i, step % l + 1);
            (rng.next_u64() >> 11) < (1u64 << (53 - i))
        } else {
            rand::Rng::gen_bool(rng, Self::broadcast_probability(phase_len, step))
        }
    }
}

impl NodeBehavior<()> for DecayNode {
    fn act(&mut self, ctx: &mut Ctx<'_>) -> Action<()> {
        if !self.informed {
            return Action::Listen;
        }
        if Self::draw_broadcast(self.phase_len, ctx.round, ctx.rng) {
            Action::Broadcast(())
        } else {
            Action::Listen
        }
    }

    fn receive(&mut self, _ctx: &mut Ctx<'_>, rx: Reception<()>) {
        if rx.is_packet() {
            self.informed = true;
        }
    }

    fn decoded(&self) -> bool {
        self.informed
    }

    // Quiescence opt-in: an uninformed Decay node listens without
    // drawing (see `act`) and ignores silence, so the engine may skip
    // it until the message reaches it.
    fn wants_poll(&self) -> bool {
        self.informed
    }

    // Silence never changes a Decay node (see `receive`), `act` only
    // touches the RNG, and there is no queue: the engine may settle
    // silent and broadcasting Decay nodes word-at-a-time.
    const SILENCE_TRANSPARENT: bool = true;
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators;

    #[test]
    fn phase_step_matches_modulo() {
        for l in 1u32..=64 {
            for step in (0..200).chain([u64::MAX, (1 << 57) - 1, 1 << 57, 199_999_999]) {
                assert_eq!(
                    phase_step(l, step),
                    step % u64::from(l),
                    "L {l} step {step}"
                );
            }
        }
        // Oversized phase lengths fall back to the hardware modulo.
        assert_eq!(phase_step(65, 1_000), 1_000 % 65);
        assert_eq!(phase_step(u32::MAX, 7), 7);
    }

    #[test]
    fn draw_broadcast_matches_gen_bool() {
        use rand::{RngCore, SeedableRng};
        let mut a = rand::rngs::SmallRng::seed_from_u64(7);
        let mut b = a.clone();
        for phase_len in [2u32, 13, 53, 54, 64] {
            for step in 0..u64::from(phase_len) * 4 {
                let fast = DecayNode::draw_broadcast(phase_len, step, &mut a);
                let p = DecayNode::broadcast_probability(phase_len, step);
                let slow = rand::Rng::gen_bool(&mut b, p);
                assert_eq!(fast, slow, "phase_len {phase_len} step {step}");
                assert_eq!(a.next_u64(), b.next_u64(), "streams diverged");
            }
        }
    }

    #[test]
    fn broadcast_probability_matches_powi() {
        for phase_len in [2u32, 5, 11, 21, 64] {
            for step in 0..u64::from(phase_len) * 3 {
                let i = (step % u64::from(phase_len)) + 1;
                assert_eq!(
                    DecayNode::broadcast_probability(phase_len, step).to_bits(),
                    0.5f64.powi(i as i32).to_bits(),
                    "phase_len {phase_len} step {step}"
                );
            }
        }
    }

    #[test]
    fn default_phase_len_values() {
        assert_eq!(default_phase_len(2), 2);
        assert_eq!(default_phase_len(8), 4);
        assert_eq!(default_phase_len(9), 5);
        assert_eq!(default_phase_len(1024), 11);
        // Degenerate sizes clamp to n = 2.
        assert_eq!(default_phase_len(0), 2);
        assert_eq!(default_phase_len(1), 2);
    }

    #[test]
    fn broadcast_probability_cycles() {
        assert_eq!(DecayNode::broadcast_probability(3, 0), 0.5);
        assert_eq!(DecayNode::broadcast_probability(3, 1), 0.25);
        assert_eq!(DecayNode::broadcast_probability(3, 2), 0.125);
        assert_eq!(DecayNode::broadcast_probability(3, 3), 0.5);
    }

    #[test]
    fn faultless_path_completes() {
        let g = generators::path(32);
        let run = Decay::new()
            .run(&g, NodeId::new(0), Channel::faultless(), 1, 100_000)
            .unwrap();
        assert!(run.completed());
        assert!(run.rounds_used() > 31, "path needs at least D rounds");
    }

    #[test]
    fn receiver_faults_completes_slower() {
        let g = generators::path(32);
        let base = Decay::new()
            .run(&g, NodeId::new(0), Channel::faultless(), 7, 1_000_000)
            .unwrap()
            .rounds_used();
        // Average several noisy runs to dodge variance.
        let mut total = 0;
        for seed in 0..5 {
            total += Decay::new()
                .run(
                    &g,
                    NodeId::new(0),
                    Channel::receiver(0.6).unwrap(),
                    seed,
                    1_000_000,
                )
                .unwrap()
                .rounds_used();
        }
        let noisy = total / 5;
        assert!(
            noisy > base,
            "receiver faults should slow Decay (faultless {base}, noisy {noisy})"
        );
    }

    #[test]
    fn sender_faults_complete() {
        let g = generators::gnp_connected(64, 0.08, 3).unwrap();
        let run = Decay::new()
            .run(
                &g,
                NodeId::new(0),
                Channel::sender(0.5).unwrap(),
                11,
                1_000_000,
            )
            .unwrap();
        assert!(
            run.completed(),
            "Decay must finish under sender faults (Lemma 9)"
        );
    }

    #[test]
    fn star_completes_within_phases() {
        let g = generators::star(127);
        let run = Decay::new()
            .run(&g, NodeId::new(0), Channel::faultless(), 5, 10_000)
            .unwrap();
        // One hop: all leaves hear the center's first solo broadcast.
        // Decay's first broadcast at probability 1/2 happens within a
        // couple of phases.
        assert!(run.rounds_used() <= 64, "rounds {}", run.rounds_used());
    }

    #[test]
    fn budget_exhaustion_reports_none() {
        let g = generators::path(64);
        let run = Decay::new()
            .run(&g, NodeId::new(0), Channel::faultless(), 1, 3)
            .unwrap();
        assert!(!run.completed());
    }

    #[test]
    fn bad_source_rejected() {
        let g = generators::path(4);
        assert!(matches!(
            Decay::new().run(&g, NodeId::new(9), Channel::faultless(), 0, 10),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn zero_phase_len_rejected() {
        let g = generators::path(4);
        assert!(matches!(
            Decay::new()
                .with_phase_len(0)
                .run(&g, NodeId::new(0), Channel::faultless(), 0, 10),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn determinism() {
        let g = generators::gnp_connected(40, 0.1, 2).unwrap();
        let fault = Channel::receiver(0.3).unwrap();
        let a = Decay::new()
            .run(&g, NodeId::new(0), fault, 13, 100_000)
            .unwrap();
        let b = Decay::new()
            .run(&g, NodeId::new(0), fault, 13, 100_000)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_decay_matches_sequential() {
        let g = generators::gnp_connected(60, 0.08, 5).unwrap();
        let fault = Channel::receiver(0.3).unwrap();
        let sequential = Decay::new()
            .run(&g, NodeId::new(0), fault, 17, 100_000)
            .unwrap();
        for shards in [0, 2, 4, 7] {
            let sharded = Decay::new()
                .with_shards(shards)
                .run(&g, NodeId::new(0), fault, 17, 100_000)
                .unwrap();
            assert_eq!(sequential, sharded, "shards = {shards}");
        }
    }

    #[test]
    fn failure_rate_decreases_with_budget() {
        // Lemma 9's δ-dependence: a larger budget lowers the failure
        // probability; a generous budget drives it to ~0.
        let g = generators::path(48);
        let fault = Channel::receiver(0.5).unwrap();
        let decay = Decay::new();
        let tight = decay
            .failure_rate(&g, NodeId::new(0), fault, 300, 30, 7)
            .unwrap();
        let loose = decay
            .failure_rate(&g, NodeId::new(0), fault, 3_000, 30, 7)
            .unwrap();
        assert!(
            loose <= tight,
            "budget 3000 failed more ({loose}) than 300 ({tight})"
        );
        assert_eq!(loose, 0.0, "a 10× budget should essentially never fail");
        assert!(tight > 0.0, "a starved budget should fail sometimes");
    }

    #[test]
    fn profiled_run_orders_latencies_along_the_path() {
        let g = generators::path(24);
        let (run, profile) = Decay::new()
            .run_profiled(
                &g,
                NodeId::new(0),
                Channel::receiver(0.3).unwrap(),
                5,
                100_000,
            )
            .unwrap();
        assert!(run.completed());
        // Every non-source node was served (the source may also hear
        // packets echoed back from its neighbor).
        assert!(profile.delivered_count() >= 23);
        assert_eq!(profile.decode_complete(NodeId::new(0)), Some(0));
        // Decay informs a node the round it first hears, so the two
        // profiles agree; the flood front is monotone along the path.
        let mut last = 0;
        for i in 1..24u32 {
            let v = NodeId::new(i);
            let first = profile.first_packet(v).expect("delivered");
            assert_eq!(profile.decode_complete(v), Some(first));
            assert!(first >= last, "front moved backwards at {v}");
            assert!(first < run.rounds_used());
            last = first;
        }
    }

    #[test]
    fn run_fixed_matches_run() {
        let g = generators::path(16);
        let fault = Channel::receiver(0.3).unwrap();
        let rounds = Decay::new()
            .run(&g, NodeId::new(0), fault, 5, 1_000_000)
            .unwrap()
            .rounds_used();
        assert!(Decay::new()
            .run_fixed(&g, NodeId::new(0), fault, 5, rounds)
            .unwrap());
        assert!(!Decay::new()
            .run_fixed(&g, NodeId::new(0), fault, 5, rounds - 1)
            .unwrap());
    }
}
