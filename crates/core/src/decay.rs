//! The Decay broadcast algorithm (Bar-Yehuda, Goldreich, Itai 1992;
//! paper §3.4.1).
//!
//! Rounds are grouped into phases of `L = ⌈log₂ n⌉ + 1` rounds. In the
//! `i`-th round of a phase (`i = 1..=L`) every *informed* node
//! broadcasts the message independently with probability `2^{-i}`.
//! Whatever the number of informed neighbors a node has, some round of
//! the phase has a broadcast probability near the inverse of that
//! count, so an uninformed node with an informed neighbor becomes
//! informed with constant probability per phase (Lemma 5).
//!
//! Decay needs no topology knowledge and — the paper's Lemma 9 — keeps
//! its guarantees under both sender and receiver faults, slowed only
//! by the `1/(1-p)` fault factor:
//! `O((log n / (1-p)) · (D + log n + log 1/δ))` rounds.

use netgraph::{Graph, NodeId};
use radio_model::{Action, Channel, Ctx, LatencyProfile, NodeBehavior, Reception};

use crate::{BroadcastRun, CoreError};

/// Configuration for [`Decay`].
///
/// The algorithmic knob is the phase length; `None` (default) derives
/// `⌈log₂ n⌉ + 1` from the graph at run time. `shards` is a pure
/// execution knob: it is forwarded to
/// [`radio_model::Simulator::with_shards`] and never changes measured results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decay {
    /// Phase length override; `None` derives `⌈log₂ n⌉ + 1`.
    pub phase_len: Option<u32>,
    /// Simulator shard count (1 = sequential, 0 = auto); see
    /// [`radio_model::Simulator::with_shards`].
    pub shards: usize,
}

impl Default for Decay {
    /// Derived phase length, sequential engine.
    fn default() -> Self {
        Decay {
            phase_len: None,
            shards: 1,
        }
    }
}

impl Decay {
    /// Creates the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets an explicit phase length (must be ≥ 1).
    pub fn with_phase_len(mut self, phase_len: u32) -> Self {
        self.phase_len = Some(phase_len);
        self
    }

    /// Sets the simulator shard count (1 = sequential, 0 = auto);
    /// results are bit-identical for any value.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// The phase length used for an `n`-node graph.
    pub fn effective_phase_len(&self, n: usize) -> u32 {
        self.phase_len.unwrap_or_else(|| default_phase_len(n))
    }

    /// Runs single-message Decay from `source` until every node is
    /// informed or `max_rounds` elapse.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidParameter`] if an explicit phase length is 0;
    /// * [`CoreError::Model`] for simulator configuration errors.
    pub fn run(
        &self,
        graph: &Graph,
        source: NodeId,
        fault: Channel,
        seed: u64,
        max_rounds: u64,
    ) -> Result<BroadcastRun, CoreError> {
        Ok(self.run_profiled(graph, source, fault, seed, max_rounds)?.0)
    }

    /// As [`Decay::run`], additionally returning the per-node
    /// [`LatencyProfile`] (first-delivery and decode-completion
    /// rounds).
    ///
    /// # Errors
    ///
    /// As [`Decay::run`].
    pub fn run_profiled(
        &self,
        graph: &Graph,
        source: NodeId,
        fault: Channel,
        seed: u64,
        max_rounds: u64,
    ) -> Result<(BroadcastRun, LatencyProfile), CoreError> {
        let n = graph.node_count();
        if source.index() >= n {
            return Err(CoreError::InvalidParameter {
                reason: format!("source {source} out of bounds for {n} nodes"),
            });
        }
        let phase_len = self.effective_phase_len(n);
        if phase_len == 0 {
            return Err(CoreError::InvalidParameter {
                reason: "phase length must be ≥ 1".into(),
            });
        }
        let behaviors: Vec<DecayNode> = (0..n)
            .map(|i| DecayNode {
                informed: i == source.index(),
                phase_len,
            })
            .collect();
        crate::outcome::run_profiled_until(
            graph,
            fault,
            behaviors,
            seed,
            max_rounds,
            self.shards,
            |bs| bs.iter().all(|b| b.informed),
        )
    }

    /// Runs Decay for exactly `budget` rounds and reports whether the
    /// broadcast finished — the *fixed-length, failure-probability*
    /// form in which Lemmas 6 and 9 are stated (`δ` is the probability
    /// this returns `false` for a `Θ((log n/(1−p))(D + log n + log 1/δ))`
    /// budget).
    ///
    /// # Errors
    ///
    /// As [`Decay::run`].
    pub fn run_fixed(
        &self,
        graph: &Graph,
        source: NodeId,
        fault: Channel,
        seed: u64,
        budget: u64,
    ) -> Result<bool, CoreError> {
        Ok(self.run(graph, source, fault, seed, budget)?.completed())
    }

    /// Monte-Carlo estimate of the failure probability `δ` of the
    /// fixed-length schedule with the given round `budget`.
    ///
    /// # Errors
    ///
    /// As [`Decay::run`].
    pub fn failure_rate(
        &self,
        graph: &Graph,
        source: NodeId,
        fault: Channel,
        budget: u64,
        trials: u64,
        seed0: u64,
    ) -> Result<f64, CoreError> {
        let mut failures = 0u64;
        for t in 0..trials {
            if !self.run_fixed(graph, source, fault, seed0 + t, budget)? {
                failures += 1;
            }
        }
        Ok(failures as f64 / trials as f64)
    }
}

/// Derives the canonical phase length `⌈log₂ n⌉ + 1`.
pub fn default_phase_len(n: usize) -> u32 {
    (usize::BITS - (n.max(2) - 1).leading_zeros()) + 1
}

/// Per-node Decay state machine. Exposed so other algorithms (FASTBC's
/// slow rounds) and the multi-message variants can reuse the step rule.
#[derive(Debug, Clone)]
pub struct DecayNode {
    /// Whether this node holds the message.
    pub informed: bool,
    /// Phase length `L`.
    pub phase_len: u32,
}

impl DecayNode {
    /// The Decay broadcast probability for (0-based) `step` within the
    /// phase structure: `2^{-((step mod L) + 1)}`.
    pub fn broadcast_probability(phase_len: u32, step: u64) -> f64 {
        let i = (step % u64::from(phase_len)) + 1;
        0.5f64.powi(i as i32)
    }
}

impl NodeBehavior<()> for DecayNode {
    fn act(&mut self, ctx: &mut Ctx<'_>) -> Action<()> {
        if !self.informed {
            return Action::Listen;
        }
        let p = Self::broadcast_probability(self.phase_len, ctx.round);
        if rand::Rng::gen_bool(ctx.rng, p) {
            Action::Broadcast(())
        } else {
            Action::Listen
        }
    }

    fn receive(&mut self, _ctx: &mut Ctx<'_>, rx: Reception<()>) {
        if rx.is_packet() {
            self.informed = true;
        }
    }

    fn decoded(&self) -> bool {
        self.informed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators;

    #[test]
    fn default_phase_len_values() {
        assert_eq!(default_phase_len(2), 2);
        assert_eq!(default_phase_len(8), 4);
        assert_eq!(default_phase_len(9), 5);
        assert_eq!(default_phase_len(1024), 11);
        // Degenerate sizes clamp to n = 2.
        assert_eq!(default_phase_len(0), 2);
        assert_eq!(default_phase_len(1), 2);
    }

    #[test]
    fn broadcast_probability_cycles() {
        assert_eq!(DecayNode::broadcast_probability(3, 0), 0.5);
        assert_eq!(DecayNode::broadcast_probability(3, 1), 0.25);
        assert_eq!(DecayNode::broadcast_probability(3, 2), 0.125);
        assert_eq!(DecayNode::broadcast_probability(3, 3), 0.5);
    }

    #[test]
    fn faultless_path_completes() {
        let g = generators::path(32);
        let run = Decay::new()
            .run(&g, NodeId::new(0), Channel::faultless(), 1, 100_000)
            .unwrap();
        assert!(run.completed());
        assert!(run.rounds_used() > 31, "path needs at least D rounds");
    }

    #[test]
    fn receiver_faults_completes_slower() {
        let g = generators::path(32);
        let base = Decay::new()
            .run(&g, NodeId::new(0), Channel::faultless(), 7, 1_000_000)
            .unwrap()
            .rounds_used();
        // Average several noisy runs to dodge variance.
        let mut total = 0;
        for seed in 0..5 {
            total += Decay::new()
                .run(
                    &g,
                    NodeId::new(0),
                    Channel::receiver(0.6).unwrap(),
                    seed,
                    1_000_000,
                )
                .unwrap()
                .rounds_used();
        }
        let noisy = total / 5;
        assert!(
            noisy > base,
            "receiver faults should slow Decay (faultless {base}, noisy {noisy})"
        );
    }

    #[test]
    fn sender_faults_complete() {
        let g = generators::gnp_connected(64, 0.08, 3).unwrap();
        let run = Decay::new()
            .run(
                &g,
                NodeId::new(0),
                Channel::sender(0.5).unwrap(),
                11,
                1_000_000,
            )
            .unwrap();
        assert!(
            run.completed(),
            "Decay must finish under sender faults (Lemma 9)"
        );
    }

    #[test]
    fn star_completes_within_phases() {
        let g = generators::star(127);
        let run = Decay::new()
            .run(&g, NodeId::new(0), Channel::faultless(), 5, 10_000)
            .unwrap();
        // One hop: all leaves hear the center's first solo broadcast.
        // Decay's first broadcast at probability 1/2 happens within a
        // couple of phases.
        assert!(run.rounds_used() <= 64, "rounds {}", run.rounds_used());
    }

    #[test]
    fn budget_exhaustion_reports_none() {
        let g = generators::path(64);
        let run = Decay::new()
            .run(&g, NodeId::new(0), Channel::faultless(), 1, 3)
            .unwrap();
        assert!(!run.completed());
    }

    #[test]
    fn bad_source_rejected() {
        let g = generators::path(4);
        assert!(matches!(
            Decay::new().run(&g, NodeId::new(9), Channel::faultless(), 0, 10),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn zero_phase_len_rejected() {
        let g = generators::path(4);
        assert!(matches!(
            Decay::new()
                .with_phase_len(0)
                .run(&g, NodeId::new(0), Channel::faultless(), 0, 10),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn determinism() {
        let g = generators::gnp_connected(40, 0.1, 2).unwrap();
        let fault = Channel::receiver(0.3).unwrap();
        let a = Decay::new()
            .run(&g, NodeId::new(0), fault, 13, 100_000)
            .unwrap();
        let b = Decay::new()
            .run(&g, NodeId::new(0), fault, 13, 100_000)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_decay_matches_sequential() {
        let g = generators::gnp_connected(60, 0.08, 5).unwrap();
        let fault = Channel::receiver(0.3).unwrap();
        let sequential = Decay::new()
            .run(&g, NodeId::new(0), fault, 17, 100_000)
            .unwrap();
        for shards in [0, 2, 4, 7] {
            let sharded = Decay::new()
                .with_shards(shards)
                .run(&g, NodeId::new(0), fault, 17, 100_000)
                .unwrap();
            assert_eq!(sequential, sharded, "shards = {shards}");
        }
    }

    #[test]
    fn failure_rate_decreases_with_budget() {
        // Lemma 9's δ-dependence: a larger budget lowers the failure
        // probability; a generous budget drives it to ~0.
        let g = generators::path(48);
        let fault = Channel::receiver(0.5).unwrap();
        let decay = Decay::new();
        let tight = decay
            .failure_rate(&g, NodeId::new(0), fault, 300, 30, 7)
            .unwrap();
        let loose = decay
            .failure_rate(&g, NodeId::new(0), fault, 3_000, 30, 7)
            .unwrap();
        assert!(
            loose <= tight,
            "budget 3000 failed more ({loose}) than 300 ({tight})"
        );
        assert_eq!(loose, 0.0, "a 10× budget should essentially never fail");
        assert!(tight > 0.0, "a starved budget should fail sometimes");
    }

    #[test]
    fn profiled_run_orders_latencies_along_the_path() {
        let g = generators::path(24);
        let (run, profile) = Decay::new()
            .run_profiled(
                &g,
                NodeId::new(0),
                Channel::receiver(0.3).unwrap(),
                5,
                100_000,
            )
            .unwrap();
        assert!(run.completed());
        // Every non-source node was served (the source may also hear
        // packets echoed back from its neighbor).
        assert!(profile.delivered_count() >= 23);
        assert_eq!(profile.decode_complete(NodeId::new(0)), Some(0));
        // Decay informs a node the round it first hears, so the two
        // profiles agree; the flood front is monotone along the path.
        let mut last = 0;
        for i in 1..24u32 {
            let v = NodeId::new(i);
            let first = profile.first_packet(v).expect("delivered");
            assert_eq!(profile.decode_complete(v), Some(first));
            assert!(first >= last, "front moved backwards at {v}");
            assert!(first < run.rounds_used());
            last = first;
        }
    }

    #[test]
    fn run_fixed_matches_run() {
        let g = generators::path(16);
        let fault = Channel::receiver(0.3).unwrap();
        let rounds = Decay::new()
            .run(&g, NodeId::new(0), fault, 5, 1_000_000)
            .unwrap()
            .rounds_used();
        assert!(Decay::new()
            .run_fixed(&g, NodeId::new(0), fault, 5, rounds)
            .unwrap());
        assert!(!Decay::new()
            .run_fixed(&g, NodeId::new(0), fault, 5, rounds - 1)
            .unwrap());
    }
}
