//! Property-based tests for the consensus workloads: honest-node
//! agreement and validity hold for every channel × adversary cell with
//! assumed tolerance `f < n/3`, and full [`ConsensusRun`]s are
//! bit-identical across shard counts.

use netgraph::{generators, Graph, NodeId};
use noisy_radio_core::consensus::{BenOr, Brb, ConsensusRun};
use proptest::prelude::*;
use radio_model::{Adversary, Channel, Misbehavior};

fn arb_graph() -> impl Strategy<Value = Graph> {
    prop_oneof![
        (7usize..12).prop_map(generators::path),
        (7usize..12, any::<u64>(), 0.4..0.9f64)
            .prop_map(|(n, seed, p)| generators::gnp_connected(n, p, seed).unwrap()),
    ]
}

/// Every channel shape, including a composed sender+erasure arm.
fn arb_channel() -> impl Strategy<Value = Channel> {
    prop_oneof![
        Just(Channel::faultless()),
        (0.0..0.5f64).prop_map(|p| Channel::sender(p).expect("valid p")),
        (0.0..0.5f64).prop_map(|p| Channel::receiver(p).expect("valid p")),
        (0.0..0.5f64).prop_map(|p| Channel::erasure(p).expect("valid p")),
        (0.0..0.4f64, 0.0..0.4f64).prop_map(|(s, e)| {
            Channel::sender(s)
                .expect("valid p")
                .compose(Channel::erasure(e).expect("valid p"))
                .expect("sender composes with erasure")
        }),
    ]
}

/// An adversary cell: the misbehavior kind (`None` leaves every node
/// honest) together with the raw tolerance pick (reduced mod `n/3` per
/// graph in [`build_adversary`]).
fn arb_adversary_pick() -> impl Strategy<Value = (Option<Misbehavior>, usize)> {
    let kind = prop_oneof![
        Just(None),
        (1u64..30).prop_map(|round| Some(Misbehavior::Crash { round })),
        Just(Some(Misbehavior::Equivocate)),
        Just(Some(Misbehavior::Jam)),
    ];
    (kind, 0usize..4)
}

/// Builds the adversary for a graph of `n` nodes: `f < n/3` corrupted
/// nodes of the drawn kind, always sparing node 0 (the BRB source).
fn build_adversary(
    n: usize,
    kind: Option<Misbehavior>,
    f_pick: usize,
    adv_seed: u64,
) -> (Adversary, usize) {
    let f = f_pick % ((n - 1) / 3 + 1);
    match kind {
        Some(kind) if f > 0 => (
            Adversary::seeded(n, f, kind, adv_seed, &[NodeId::new(0)]).expect("f < n fits"),
            f,
        ),
        _ => (Adversary::honest(n), f),
    }
}

const BUDGET: u64 = 20_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Bracha BRB with an honest source: honest nodes never disagree,
    /// and whenever the run completes every honest node delivered the
    /// source's value.
    #[test]
    fn brb_agreement_and_validity(
        g in arb_graph(),
        channel in arb_channel(),
        (kind, f_pick) in arb_adversary_pick(),
        value in any::<bool>(),
        (adv_seed, seed) in (any::<u64>(), any::<u64>()),
    ) {
        let n = g.node_count();
        let (adversary, f) = build_adversary(n, kind, f_pick, adv_seed);
        let run = Brb::new()
            .run(&g, NodeId::new(0), value, f, channel, &adversary, seed, BUDGET)
            .expect("valid BRB parameters");
        prop_assert!(run.agreement(), "agreement violated: {:?}", run.decisions);
        if run.completed() {
            prop_assert!(
                run.valid_for(value),
                "validity violated: {:?}",
                run.decisions
            );
        }
        if run.decided_count() > 0 {
            prop_assert_eq!(run.decided_value(), Some(value));
        }
    }

    /// Ben-Or: honest nodes never disagree, and on unanimous honest
    /// inputs no adversary can flip the decision away from that value.
    #[test]
    fn ben_or_agreement_and_validity(
        g in arb_graph(),
        channel in arb_channel(),
        (kind, f_pick) in arb_adversary_pick(),
        unanimous in prop_oneof![Just(None), any::<bool>().prop_map(Some)],
        input_bits in any::<u64>(),
        (adv_seed, seed) in (any::<u64>(), any::<u64>()),
    ) {
        let n = g.node_count();
        let (adversary, f) = build_adversary(n, kind, f_pick, adv_seed);
        let inputs: Vec<bool> = (0..n)
            .map(|i| unanimous.unwrap_or(input_bits >> (i % 64) & 1 == 1))
            .collect();
        let run = BenOr::new()
            .run(&g, &inputs, f, channel, &adversary, seed, BUDGET)
            .expect("valid Ben-Or parameters");
        prop_assert!(run.agreement(), "agreement violated: {:?}", run.decisions);
        if let (Some(v), true) = (unanimous, run.decided_count() > 0) {
            prop_assert!(
                run.valid_for(v),
                "validity violated for unanimous {v}: {:?}",
                run.decisions
            );
        }
    }

    /// Both algorithms return bit-identical [`ConsensusRun`]s for any
    /// shard count in 1..5 — the new `Payload`/adversary machinery
    /// honors the engine's determinism contract.
    #[test]
    fn consensus_runs_are_shard_count_invariant(
        g in arb_graph(),
        channel in arb_channel(),
        (kind, f_pick) in arb_adversary_pick(),
        seed in any::<u64>(),
        shards in 2usize..6,
    ) {
        let n = g.node_count();
        let (adversary, f) = build_adversary(n, kind, f_pick, 77);
        let inputs: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();

        let brb = |k: usize| -> ConsensusRun {
            Brb::new()
                .with_shards(k)
                .run(&g, NodeId::new(0), true, f, channel, &adversary, seed, 5_000)
                .expect("valid BRB parameters")
        };
        prop_assert_eq!(brb(1), brb(shards));

        let ben_or = |k: usize| -> ConsensusRun {
            BenOr::new()
                .with_shards(k)
                .run(&g, &inputs, f, channel, &adversary, seed, 5_000)
                .expect("valid Ben-Or parameters")
        };
        prop_assert_eq!(ben_or(1), ben_or(shards));
    }
}
