//! Property-based tests for the continuous-traffic engine: the
//! conservation law `injected == delivered + queued` holds every
//! round for every workload, accounting always closes at the end of a
//! run, and the full [`ThroughputRun`] is shard-count invariant.

use netgraph::{generators, Graph, NodeId};
use noisy_radio_core::traffic::{run_decay_traffic, run_rlnc_traffic, run_xin_xia_traffic};
use proptest::prelude::*;
use radio_model::Channel;
use radio_throughput::traffic::{ThroughputRun, TrafficConfig};

fn arb_graph() -> impl Strategy<Value = Graph> {
    prop_oneof![
        (3usize..14).prop_map(generators::path),
        (4usize..16, any::<u64>(), 0.15..0.5f64)
            .prop_map(|(n, seed, p)| generators::gnp_connected(n, p, seed).unwrap()),
    ]
}

fn arb_channel() -> impl Strategy<Value = Channel> {
    prop_oneof![
        Just(Channel::faultless()),
        (0.0..0.7f64).prop_map(|p| Channel::sender(p).expect("valid p")),
        (0.0..0.7f64).prop_map(|p| Channel::receiver(p).expect("valid p")),
        (0.0..0.7f64).prop_map(|p| Channel::erasure(p).expect("valid p")),
    ]
}

/// Runs the workload selected by `algo` (0 = Decay, 1 = Xin–Xia,
/// 2 = RLNC with generations of 4).
fn run_algo(
    algo: u8,
    g: &Graph,
    channel: Channel,
    config: &TrafficConfig,
    seed: u64,
) -> ThroughputRun {
    let src = NodeId::new(0);
    match algo {
        0 => run_decay_traffic(g, src, channel, config, seed),
        1 => run_xin_xia_traffic(g, src, channel, config, seed),
        _ => run_rlnc_traffic(g, src, 4, channel, config, seed),
    }
    .expect("valid traffic run")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The engine-polled backlog matches the driver's accounting every
    /// round (`ThroughputRun::conserved`), and the final tallies close:
    /// whether the run drains or saturates, `injected == delivered +
    /// final backlog`, with one latency per delivered message.
    #[test]
    fn injected_equals_delivered_plus_queued(
        g in arb_graph(),
        channel in arb_channel(),
        algo in 0u8..3,
        rate in 0.01..0.6f64,
        messages in 1u64..6,
        seed in any::<u64>(),
    ) {
        let config = TrafficConfig { rate, messages, max_rounds: 3_000, shards: 1 };
        let run = run_algo(algo, &g, channel, &config, seed);
        prop_assert!(run.conserved, "per-round conservation violated");
        prop_assert!(run.injected <= messages);
        prop_assert!(run.delivered <= run.injected);
        prop_assert_eq!(run.queue_depth.len() as u64, run.rounds);
        // Queue depths are polled at end-of-round, before the
        // post-step drain retires that round's completions — so the
        // final sample bounds the final backlog from above.
        let backlog = run.queue_depth.last().copied().unwrap_or(0);
        prop_assert!(backlog >= run.injected - run.delivered);
        if run.saturated {
            prop_assert!(run.delivered < messages);
        } else {
            prop_assert_eq!(run.injected, messages);
            prop_assert_eq!(run.delivered, messages);
        }
        prop_assert_eq!(run.latencies.len() as u64, run.delivered);
        prop_assert_eq!(run.peak_queued, run.queue_depth.iter().copied().max().unwrap_or(0));
    }

    /// The full `ThroughputRun` — rounds, latencies, queue-depth
    /// series, profile, flags — is bit-identical for any shard count.
    #[test]
    fn throughput_run_is_shard_count_invariant(
        g in arb_graph(),
        channel in arb_channel(),
        algo in 0u8..3,
        rate in 0.02..0.4f64,
        seed in any::<u64>(),
        shards in 2usize..6,
    ) {
        let config = |k: usize| TrafficConfig {
            rate,
            messages: 3,
            max_rounds: 3_000,
            shards: k,
        };
        let sequential = run_algo(algo, &g, channel, &config(1), seed);
        let sharded = run_algo(algo, &g, channel, &config(shards), seed);
        prop_assert_eq!(sequential, sharded);
    }
}
