//! Steady-state invariants of the continuous-traffic engine
//! (DESIGN.md §9): the one-message degeneracy regression against the
//! one-shot simulator, and the saturated-cap reporting contract.

use netgraph::{generators, NodeId};
use noisy_radio_core::decay::{default_phase_len, DecayNode};
use noisy_radio_core::traffic::{run_decay_traffic, DecayTraffic};
use radio_model::{Channel, RoundTrace, Simulator};
use radio_throughput::traffic::{run_traffic_traced, TrafficConfig};

/// One injected message must replay the one-shot Decay broadcast
/// bit-for-bit: same rounds, same per-round traces (modulo the
/// traffic engine's extra backlog column), same latency profile.
#[test]
fn one_message_traffic_degenerates_to_one_shot_decay() {
    let g = generators::gnp_connected(24, 0.12, 3).unwrap();
    let source = NodeId::new(0);
    let channel = Channel::receiver(0.3).unwrap();
    let seed = 41;

    // Reference: a hand-stepped one-shot Decay run with traces.
    let phase_len = default_phase_len(g.node_count());
    let behaviors: Vec<DecayNode> = (0..g.node_count())
        .map(|i| DecayNode {
            informed: i == source.index(),
            phase_len,
        })
        .collect();
    let mut sim = Simulator::new(&g, channel, behaviors, seed).unwrap();
    let mut reference_traces = Vec::new();
    while !sim.behaviors().iter().all(|b| b.informed) {
        let mut t = RoundTrace::default();
        sim.step_traced(&mut t);
        reference_traces.push(t);
        assert!(sim.round() < 100_000, "one-shot run did not converge");
    }
    let reference_rounds = sim.round();
    let reference_profile = sim.latency_profile();

    // Same seed through the traffic engine, one message at any rate.
    let mut w = DecayTraffic::new(&g, source).unwrap();
    let config = TrafficConfig {
        rate: 1.0,
        messages: 1,
        max_rounds: 100_000,
        shards: 1,
    };
    let (run, traces) = run_traffic_traced(&g, channel, &mut w, &config, seed).unwrap();

    assert!(run.drained() && run.conserved);
    assert_eq!(run.rounds, reference_rounds);
    assert_eq!(run.latencies, vec![reference_rounds]);
    assert_eq!(run.profile, reference_profile);

    assert_eq!(traces.len(), reference_traces.len());
    for (r, (got, want)) in traces.iter().zip(&reference_traces).enumerate() {
        assert_eq!(got.broadcasters, want.broadcasters, "round {r}");
        assert_eq!(got.deliveries, want.deliveries, "round {r}");
        assert_eq!(got.collided_listeners, want.collided_listeners, "round {r}");
        assert_eq!(got.erased_listeners, want.erased_listeners, "round {r}");
        assert_eq!(
            got.first_packet_listeners, want.first_packet_listeners,
            "round {r}"
        );
        assert_eq!(got.decoded_nodes, want.decoded_nodes, "round {r}");
        // The only divergence: the traffic engine reports the source's
        // backlog of 1 until the message retires (after the last step).
        assert_eq!(want.queued_nodes, vec![], "round {r}");
        assert_eq!(got.queued_nodes, vec![(source, 1)], "round {r}");
    }
}

/// A run capped far below the sustainable rate must report
/// `saturated: true` with partial latencies for what did complete and
/// a growing queue — never a panic or a bogus full drain.
#[test]
fn overloaded_run_reports_saturation_with_partial_latencies() {
    let g = generators::path(16);
    let channel = Channel::receiver(0.4).unwrap();
    let config = TrafficConfig {
        rate: 1.0, // one message per round — far beyond Decay's service rate
        messages: 50,
        max_rounds: 400,
        shards: 1,
    };
    let run = run_decay_traffic(&g, NodeId::new(0), channel, &config, 3).unwrap();

    assert!(run.saturated);
    assert!(!run.drained());
    assert!(run.conserved, "conservation must hold even when saturated");
    assert_eq!(run.rounds, 400);
    assert_eq!(run.injected, 50);
    assert!(run.delivered < 50);
    assert_eq!(run.latencies.len(), run.delivered as usize);
    // Sequential service: later messages wait longer.
    assert!(run.latencies.windows(2).all(|w| w[0] <= w[1]));
    // The backlog at the cap is everything injected but undelivered.
    assert_eq!(
        *run.queue_depth.last().unwrap(),
        run.injected - run.delivered
    );
    assert!(run.peak_queued >= run.injected - run.delivered);
    assert!(run.achieved_rate() < config.rate);
}
