//! Cross-crate invariant checks: the structural guarantees the
//! paper's proofs rely on, observed inside live simulations.

use noisy_radio::core::fastbc::FastbcSchedule;
use noisy_radio::core::robust_fastbc::RobustFastbcSchedule;
use noisy_radio::gbst::Gbst;
use noisy_radio::model::Channel;
use noisy_radio::netgraph::{generators, NodeId};

#[test]
fn fastbc_fast_rounds_collision_free_across_seeds() {
    // §3.4.2: "fast nodes of different ranks that transmit during the
    // same round must be at least 6 levels apart … nodes of the same
    // rank … will not interfere because of the GBST construction."
    for seed in 0..5 {
        let g = generators::gnp_connected(80, 0.07, seed).expect("valid");
        let sched = FastbcSchedule::new(&g, NodeId::new(0)).expect("connected");
        let gbst = sched.gbst();
        sched
            .run_traced(Channel::faultless(), seed, 50_000, |round, trace| {
                if round % 2 != 0 {
                    return;
                }
                for &u in &trace.broadcasters {
                    let c = gbst.fast_child(u).expect("fast-round broadcaster is fast");
                    let ok = trace.deliveries.iter().any(|&(s, d)| s == u && d == c)
                        || trace.broadcasters.contains(&c);
                    assert!(ok, "seed {seed} round {round}: wave collided at {c}");
                }
            })
            .expect("valid")
            .rounds
            .expect("completes");
    }
}

#[test]
fn robust_fastbc_block_waves_collision_free_across_seeds() {
    for seed in 0..5 {
        let g = generators::gnp_connected(80, 0.07, 100 + seed).expect("valid");
        let sched = RobustFastbcSchedule::new(&g, NodeId::new(0)).expect("connected");
        let gbst = sched.gbst();
        sched
            .run_traced(Channel::faultless(), seed, 100_000, |round, trace| {
                if round % 2 != 0 {
                    return;
                }
                for &u in &trace.broadcasters {
                    let c = gbst.fast_child(u).expect("fast-round broadcaster is fast");
                    let ok = trace.deliveries.iter().any(|&(s, d)| s == u && d == c)
                        || trace.broadcasters.contains(&c);
                    assert!(ok, "seed {seed} round {round}: block wave collided at {c}");
                }
            })
            .expect("valid")
            .rounds
            .expect("completes");
    }
}

#[test]
fn gbst_invariants_on_every_generator() {
    let graphs = vec![
        generators::path(100),
        generators::cycle(64).expect("valid"),
        generators::star(99),
        generators::complete(32),
        generators::grid(10, 10),
        generators::balanced_tree(2, 6).expect("valid"),
        generators::caterpillar(30, 2).expect("valid"),
        generators::spider(5, 10).expect("valid"),
        generators::hypercube(7).expect("valid"),
        generators::gnp_connected(128, 0.05, 1).expect("valid"),
        generators::random_tree(128, 2).expect("valid"),
        generators::layered_random(10, 10, 0.25, 3).expect("valid"),
    ];
    for (i, g) in graphs.iter().enumerate() {
        let t = Gbst::build(g, NodeId::new(0)).expect("connected");
        t.validate(g).unwrap_or_else(|e| panic!("graph {i}: {e}"));
        let bound = (g.node_count() as f64).log2().ceil() as u32 + 1;
        assert!(
            t.max_rank() <= bound,
            "graph {i}: rank {} > {bound}",
            t.max_rank()
        );
    }
}

#[test]
fn broadcast_round_counts_are_monotone_in_fault_probability_on_average() {
    // More noise should not speed broadcast up (averaged over seeds).
    let g = generators::path(96);
    let mean = |p: f64| -> f64 {
        let fault = if p == 0.0 {
            Channel::faultless()
        } else {
            Channel::receiver(p).expect("valid")
        };
        let mut total = 0u64;
        for seed in 0..8 {
            total += noisy_radio::core::decay::Decay::new()
                .run(&g, NodeId::new(0), fault, seed, 50_000_000)
                .expect("valid")
                .rounds_used();
        }
        total as f64 / 8.0
    };
    let r0 = mean(0.0);
    let r4 = mean(0.4);
    let r7 = mean(0.7);
    assert!(r0 < r4, "p=0 ({r0}) should beat p=0.4 ({r4})");
    assert!(r4 < r7, "p=0.4 ({r4}) should beat p=0.7 ({r7})");
}

#[test]
fn wct_cluster_structure_holds_at_scale() {
    use noisy_radio::netgraph::wct::{Wct, WctParams};
    let wct = Wct::generate(WctParams {
        senders: 64,
        clusters_per_class: 8,
        cluster_size: 32,
        seed: 9,
    })
    .expect("valid");
    // Figure 2's defining property: cluster members are
    // interchangeable — identical neighborhoods.
    for c in 0..wct.cluster_count() {
        let expected = wct.cluster_sender_set(c);
        for &v in wct.cluster(c) {
            assert_eq!(wct.graph().neighbors(v), expected);
        }
    }
    // And the graph is a radius-2 star-of-stars.
    assert_eq!(
        noisy_radio::netgraph::metrics::eccentricity(wct.graph(), wct.source()),
        Some(2)
    );
}
