//! Cross-crate integration: the paper's throughput-gap results at
//! test scale, plus end-to-end coding validation.

use noisy_radio::coding::rlnc::RlncNode;
use noisy_radio::coding::rs::ReedSolomon;
use noisy_radio::coding::{Field, Gf256};
use noisy_radio::core::multi_message::DecayRlnc;
use noisy_radio::core::schedules::single_link::{
    single_link_adaptive_routing, single_link_coding, single_link_nonadaptive_routing,
};
use noisy_radio::core::schedules::star::{star_coding, star_coding_end_to_end, star_routing};
use noisy_radio::core::schedules::wct::{wct_coding, wct_routing};
use noisy_radio::model::Channel;
use noisy_radio::netgraph::wct::{Wct, WctParams};
use noisy_radio::netgraph::{generators, NodeId};

const MAX: u64 = 100_000_000;

#[test]
fn star_gap_coding_beats_routing() {
    // Theorem 17 at n = 512, k = 16, p = 1/2.
    let fault = Channel::receiver(0.5).expect("valid");
    let routing = star_routing(512, 16, fault, 1, MAX)
        .expect("valid")
        .rounds
        .expect("completes");
    let coding = star_coding(512, 16, fault, 1, MAX)
        .expect("valid")
        .rounds_used();
    assert!(
        routing as f64 > 2.0 * coding as f64,
        "expected a clear star gap: routing {routing}, coding {coding}"
    );
}

#[test]
fn star_end_to_end_rs_decodes_real_payloads() {
    let rounds =
        star_coding_end_to_end(32, 12, 8, Channel::receiver(0.4).expect("valid"), 3, 50_000)
            .expect("decodes everywhere");
    assert!(rounds >= 12);
}

#[test]
fn wct_gap_coding_beats_routing() {
    // Theorem 24 at small scale.
    let wct = Wct::generate(WctParams {
        senders: 16,
        clusters_per_class: 4,
        cluster_size: 16,
        seed: 21,
    })
    .expect("valid");
    let fault = Channel::receiver(0.5).expect("valid");
    let routing = wct_routing(&wct, 6, fault, 2, MAX)
        .expect("valid")
        .rounds
        .expect("completes");
    let coding = wct_coding(&wct, 6, fault, 2, MAX)
        .expect("valid")
        .rounds
        .expect("completes");
    assert!(
        routing > 2 * coding,
        "expected a clear WCT gap: routing {routing}, coding {coding}"
    );
}

#[test]
fn single_link_triangle_of_lemmas() {
    // Lemma 29 vs 30 vs 32 at k = 128, p = 1/2.
    let fault = Channel::receiver(0.5).expect("valid");
    let k = 128;
    // Non-adaptive with 1 repetition: fails.
    assert!(
        !single_link_nonadaptive_routing(k, 1, fault, 3)
            .expect("valid")
            .success
    );
    // Non-adaptive with 3·log k repetitions: succeeds.
    let reps = 3 * 7;
    assert!(
        single_link_nonadaptive_routing(k, reps, fault, 3)
            .expect("valid")
            .success
    );
    // Coding with 2.6k packets: succeeds in Θ(k).
    let coding = single_link_coding(k, (k as f64 * 2.6) as u64, fault, 3).expect("valid");
    assert!(coding.success);
    // Adaptive routing: Θ(k) rounds.
    let adaptive = single_link_adaptive_routing(k, fault, 3, MAX)
        .expect("valid")
        .rounds_used();
    assert!(
        adaptive < (k as u64) * reps,
        "adaptive ({adaptive}) beats non-adaptive budget"
    );
}

#[test]
fn rlnc_multi_message_payloads_survive_noise() {
    // Lemma 12 end to end with payload verification on three graphs.
    for (g, k) in [
        (generators::path(24), 6usize),
        (generators::grid(6, 6), 8),
        (generators::gnp_connected(40, 0.1, 3).expect("valid"), 10),
    ] {
        for fault in [
            Channel::sender(0.3).expect("valid"),
            Channel::receiver(0.3).expect("valid"),
        ] {
            let out = DecayRlnc {
                phase_len: None,
                payload_len: 4,
            }
            .run(&g, NodeId::new(0), k, fault, 17, MAX)
            .expect("valid");
            assert!(out.run.completed(), "RLNC stalled under {fault}");
            assert!(out.decoded_ok, "payload mismatch under {fault}");
        }
    }
}

#[test]
fn rs_and_rlnc_substrates_compose() {
    // RS-coded packets absorbed as RLNC rows still decode: coding
    // packet j of the RS code is a known linear combination.
    let k = 5;
    let payload = 3;
    let mut rng = noisy_radio::model::fork_rng(7, 0);
    let data: Vec<Vec<Gf256>> = (0..k)
        .map(|_| (0..payload).map(|_| Gf256::random(&mut rng)).collect())
        .collect();
    let rs = ReedSolomon::<Gf256>::new(k).expect("valid");
    let mut node = RlncNode::<Gf256>::new(k, payload);
    // Packet j evaluates the message polynomial at x_j: coefficients
    // are (x_j^0, ..., x_j^{k-1}).
    for j in [4usize, 17, 33, 90, 200] {
        let x = Gf256::from_index(j + 1);
        let coeffs: Vec<Gf256> = (0..k as u64).map(|e| x.pow(e)).collect();
        let packet = noisy_radio::coding::rlnc::CodedPacket {
            coeffs,
            payload: rs.packet(&data, j).expect("valid"),
        };
        assert!(
            node.absorb(packet),
            "RS packets at distinct points are independent"
        );
    }
    assert_eq!(node.decode().expect("full rank"), data);
}
