//! Cross-crate integration: every broadcast algorithm on every fault
//! model, on a spread of topologies.

use noisy_radio::core::decay::Decay;
use noisy_radio::core::fastbc::FastbcSchedule;
use noisy_radio::core::robust_fastbc::RobustFastbcSchedule;
use noisy_radio::model::Channel;
use noisy_radio::netgraph::{generators, Graph, NodeId};

const MAX: u64 = 50_000_000;

fn topologies() -> Vec<(&'static str, Graph)> {
    vec![
        ("path", generators::path(64)),
        ("star", generators::star(64)),
        ("grid", generators::grid(8, 8)),
        ("tree", generators::balanced_tree(3, 3).expect("valid")),
        (
            "gnp",
            generators::gnp_connected(64, 0.08, 5).expect("valid"),
        ),
        ("spider", generators::spider(4, 12).expect("valid")),
        ("hypercube", generators::hypercube(6).expect("valid")),
        (
            "layered",
            generators::layered_random(8, 8, 0.3, 7).expect("valid"),
        ),
    ]
}

fn fault_models() -> Vec<Channel> {
    vec![
        Channel::faultless(),
        Channel::sender(0.3).expect("valid"),
        Channel::receiver(0.3).expect("valid"),
        Channel::sender(0.6).expect("valid"),
        Channel::receiver(0.6).expect("valid"),
    ]
}

#[test]
fn decay_completes_everywhere() {
    for (name, g) in topologies() {
        for fault in fault_models() {
            let run = Decay::new()
                .run(&g, NodeId::new(0), fault, 1, MAX)
                .expect("valid config");
            assert!(run.completed(), "Decay stalled on {name} under {fault}");
        }
    }
}

#[test]
fn fastbc_completes_everywhere() {
    for (name, g) in topologies() {
        let sched = FastbcSchedule::new(&g, NodeId::new(0)).expect("connected");
        for fault in fault_models() {
            let run = sched.run(fault, 2, MAX).expect("valid config");
            assert!(run.completed(), "FASTBC stalled on {name} under {fault}");
        }
    }
}

#[test]
fn robust_fastbc_completes_everywhere() {
    for (name, g) in topologies() {
        let sched = RobustFastbcSchedule::new(&g, NodeId::new(0)).expect("connected");
        for fault in fault_models() {
            let run = sched.run(fault, 3, MAX).expect("valid config");
            assert!(
                run.completed(),
                "Robust FASTBC stalled on {name} under {fault}"
            );
        }
    }
}

#[test]
fn faultless_fastbc_beats_decay_on_long_paths() {
    // Lemma 8 vs Lemma 6: D + log² n < D·log n for large D.
    let g = generators::path(512);
    let fastbc = FastbcSchedule::new(&g, NodeId::new(0)).expect("connected");
    let f = fastbc
        .run(Channel::faultless(), 7, MAX)
        .expect("valid")
        .rounds_used();
    let d = Decay::new()
        .run(&g, NodeId::new(0), Channel::faultless(), 7, MAX)
        .expect("valid")
        .rounds_used();
    assert!(f < d, "FASTBC ({f}) should beat Decay ({d}) faultlessly");
}

#[test]
fn noisy_robust_fastbc_beats_fastbc_on_long_paths() {
    // Theorem 11 vs Lemma 10 (log-slot regime).
    use noisy_radio::core::fastbc::FastbcParams;
    let g = generators::path(512);
    let log_n = 9;
    let fastbc = FastbcSchedule::with_params(
        &g,
        NodeId::new(0),
        FastbcParams {
            phase_len: None,
            rank_slots: Some(log_n),
        },
    )
    .expect("connected");
    let robust = RobustFastbcSchedule::new(&g, NodeId::new(0)).expect("connected");
    let fault = Channel::receiver(0.5).expect("valid");
    let mut f_total = 0;
    let mut r_total = 0;
    for seed in 0..3 {
        f_total += fastbc.run(fault, seed, MAX).expect("valid").rounds_used();
        r_total += robust.run(fault, seed, MAX).expect("valid").rounds_used();
    }
    assert!(
        r_total < f_total,
        "Robust FASTBC ({r_total}) should beat noisy FASTBC ({f_total})"
    );
}

#[test]
fn same_seed_reproduces_across_algorithms() {
    let g = generators::gnp_connected(48, 0.1, 11).expect("valid");
    let fault = Channel::receiver(0.4).expect("valid");
    for _ in 0..2 {
        let a = Decay::new()
            .run(&g, NodeId::new(0), fault, 99, MAX)
            .expect("valid");
        let b = Decay::new()
            .run(&g, NodeId::new(0), fault, 99, MAX)
            .expect("valid");
        assert_eq!(a, b);
    }
    let sched = RobustFastbcSchedule::new(&g, NodeId::new(0)).expect("connected");
    assert_eq!(
        sched.run(fault, 99, MAX).expect("valid"),
        sched.run(fault, 99, MAX).expect("valid")
    );
}
