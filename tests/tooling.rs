//! Cross-crate integration for the tooling layer: execution
//! recording, DOT export, and percentile reporting over real
//! algorithm runs.

use noisy_radio::core::decay::Decay;
use noisy_radio::gbst::Gbst;
use noisy_radio::model::recorder::History;
use noisy_radio::model::Channel;
use noisy_radio::netgraph::{dot, generators, NodeId};
use noisy_radio::throughput::Percentiles;

#[test]
fn recorded_history_matches_broadcast_progress() {
    use noisy_radio::model::{Action, Ctx, NodeBehavior, Reception, Simulator};

    struct Flood {
        informed: bool,
    }
    impl NodeBehavior<()> for Flood {
        fn act(&mut self, _ctx: &mut Ctx<'_>) -> Action<()> {
            if self.informed {
                Action::Broadcast(())
            } else {
                Action::Listen
            }
        }
        fn receive(&mut self, _ctx: &mut Ctx<'_>, rx: Reception<()>) {
            if rx.is_packet() {
                self.informed = true;
            }
        }
    }

    let g = generators::path(16);
    let behaviors: Vec<Flood> = (0..16).map(|i| Flood { informed: i == 0 }).collect();
    let mut sim = Simulator::new(&g, Channel::faultless(), behaviors, 9).unwrap();
    let (history, rounds) =
        History::record_until(&mut sim, 1_000, |bs| bs.iter().all(|b| b.informed));
    let rounds = rounds.expect("flood completes");
    assert_eq!(history.rounds.len() as u64, rounds);
    // On a faultless path, node i first hears in round i-1, and the
    // recorded history should say exactly that.
    for i in 1..16u32 {
        assert_eq!(
            history.first_reception(NodeId::new(i)),
            Some(u64::from(i) - 1)
        );
    }
    assert_eq!(history.total_deliveries(), 15);
}

#[test]
fn gbst_dot_renders_every_stretch_on_generated_graphs() {
    for seed in 0..3 {
        let g = generators::gnp_connected(40, 0.08, seed).unwrap();
        let t = Gbst::build(&g, NodeId::new(0)).unwrap();
        let text = noisy_radio::gbst::dot::to_dot(&t, &g);
        // Every fast edge appears with the Figure-1 styling.
        let fast_edges: usize = g.nodes().filter(|&v| t.fast_child(v).is_some()).count();
        assert_eq!(text.matches("style=dashed color=green").count(), fast_edges);
        // Plain graph export agrees on edge count.
        let plain = dot::to_dot(&g, |_| None);
        assert_eq!(plain.matches(" -- ").count(), g.edge_count());
    }
}

#[test]
fn percentiles_of_broadcast_latency_are_ordered() {
    let g = generators::gnp_connected(48, 0.08, 7).unwrap();
    let fault = Channel::receiver(0.4).unwrap();
    let samples: Vec<f64> = (0..24)
        .map(|seed| {
            Decay::new()
                .run(&g, NodeId::new(0), fault, seed, 10_000_000)
                .unwrap()
                .rounds_used() as f64
        })
        .collect();
    let p = Percentiles::from_samples(&samples);
    assert!(p.p50 <= p.p90 && p.p90 <= p.p99);
    assert!(p.p50 > 0.0);
}
