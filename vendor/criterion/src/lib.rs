//! Offline vendored subset of the [`criterion`](https://crates.io/crates/criterion)
//! benchmark API, implemented from scratch for the `noisy-radio` workspace.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the slice of criterion its bench targets use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`], [`black_box`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: after a warm-up, each benchmark runs
//! `sample_size` samples, each an adaptively sized batch of iterations, and
//! reports min / median / mean wall-clock time per iteration to stdout. There
//! are no HTML reports, statistical regressions, or plots — only numbers fit
//! for eyeballing relative cost, which is all the workspace's experiment
//! driver (`crates/bench/src/bin/experiments.rs`) relies on for tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver: holds timing configuration and runs
/// benchmarks or [`BenchmarkGroup`]s.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1500),
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Applies command-line arguments (`cargo bench -- <filter>`); unknown
    /// flags (with their values, if any) are ignored so cargo's and real
    /// criterion's harness flags pass through without being mistaken for
    /// the benchmark-name filter.
    pub fn configure_from_args(self) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        self.apply_args(&args)
    }

    fn apply_args(mut self, args: &[String]) -> Self {
        const VALUELESS: &[&str] = &[
            "--bench",
            "--test",
            "--noplot",
            "--quiet",
            "--verbose",
            "--exact",
            "--list",
        ];
        let mut iter = args.iter().peekable();
        while let Some(a) = iter.next() {
            if let Some(eq) = a.strip_prefix("--") {
                // `--flag=value` carries its value; otherwise any unknown
                // `--flag` consumes a following non-flag token as its value
                // (e.g. `--sample-size 50` must not leave `50` behind as a
                // filter).
                if !VALUELESS.contains(&a.as_str()) && !eq.contains('=') {
                    if let Some(next) = iter.peek() {
                        if !next.starts_with("--") {
                            iter.next();
                        }
                    }
                }
            } else {
                self.filter = Some(a.clone());
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
            warm_up_time: None,
        }
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let cfg = self.clone();
        cfg.run_one(id, f);
        self
    }

    fn matches_filter(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }

    fn run_one(&self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        if !self.matches_filter(id) {
            return;
        }
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
    }
}

/// A group of related benchmarks sharing a name prefix and, optionally,
/// overridden timing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
    warm_up_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Overrides the warm-up duration for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = Some(d);
        self
    }

    fn effective(&self) -> Criterion {
        let mut c = self.criterion.clone();
        if let Some(n) = self.sample_size {
            c.sample_size = n;
        }
        if let Some(d) = self.measurement_time {
            c.measurement_time = d;
        }
        if let Some(d) = self.warm_up_time {
            c.warm_up_time = d;
        }
        c
    }

    /// Benchmarks a closure under `group_name/id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        self.effective().run_one(&full, f);
        self
    }

    /// Benchmarks a closure that receives `input` under `group_name/id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.effective().run_one(&full, |b| f(b, input));
        self
    }

    /// Ends the group (reporting happens eagerly per benchmark).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group: a function name, a parameter,
/// or both.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: Some(function.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function: Some(function),
            parameter: None,
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => write!(f, "{func}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

/// Hands the routine under test to the measurement loop.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, recording `sample_size` samples of adaptively sized
    /// iteration batches within the measurement budget.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: run until the warm-up budget is spent, measuring mean
        // iteration cost to size the sample batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            self.samples_ns.push(ns);
        }
    }

    fn report(&self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<50} (no samples)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let mut line = String::new();
        let _ = write!(
            line,
            "{id:<50} min {:>12} median {:>12} mean {:>12}",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean)
        );
        println!("{line}");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Defines a benchmark group function, in either criterion form:
/// `criterion_group!(benches, f, g)` or
/// `criterion_group! { name = benches; config = ...; targets = f, g }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Defines the `main` function of a `harness = false` bench target by
/// running the named [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test` the harness passes `--test`; bench bodies
            // are expensive, so only smoke-compile in that mode.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        quick().bench_function("counts_calls", |b| b.iter(|| calls += 1));
        assert!(calls > 0, "routine never executed");
    }

    #[test]
    fn groups_and_ids_format() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(4));
        group.bench_with_input(BenchmarkId::new("f", 7), &7usize, |b, &n| {
            b.iter(|| black_box(n * 2));
            ran = true;
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        assert!(ran);
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }

    #[test]
    fn arg_parsing_ignores_flag_values_and_keeps_filter() {
        let to_vec =
            |args: &[&str]| -> Vec<String> { args.iter().map(|s| s.to_string()).collect() };
        // An unknown flag's value must not become the filter…
        let c = Criterion::default().apply_args(&to_vec(&["--bench", "--sample-size", "50"]));
        assert_eq!(c.filter, None);
        // …an `=`-joined value never could…
        let c = Criterion::default().apply_args(&to_vec(&["--sample-size=50"]));
        assert_eq!(c.filter, None);
        // …and a positional filter still lands.
        let c = Criterion::default().apply_args(&to_vec(&["--bench", "decay"]));
        assert_eq!(c.filter.as_deref(), Some("decay"));
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = quick();
        c.filter = Some("nomatch".into());
        let mut calls = 0u64;
        c.bench_function("something_else", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 0, "filtered benchmark still ran");
    }
}
