//! Offline vendored subset of the [`proptest`](https://crates.io/crates/proptest)
//! API, implemented from scratch for the `noisy-radio` workspace.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the slice of proptest its property suites actually use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//!   `prop_flat_map`, `prop_filter`, and `boxed`,
//! * range strategies (`0..n`, `0.0..0.3f64`), tuple strategies,
//!   [`any`](arbitrary::any), [`Just`](strategy::Just),
//!   [`collection::vec()`], and [`prop_oneof!`],
//! * the [`proptest!`] macro with `#![proptest_config(...)]` support, plus
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`], and
//!   [`prop_assume!`].
//!
//! Differences from real proptest, chosen for an offline, dependency-free
//! build: failing cases are **not shrunk** (the panic message reports the
//! failing assertion instead of a minimized input), and the RNG seed is
//! derived deterministically from the test's module path and name, so runs
//! are reproducible without a persistence file.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! Test-case configuration, error type, and RNG.

    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Configuration for a `proptest!` block (case count).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful (non-rejected) cases required per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// A `prop_assume!` precondition was unmet; the case is re-drawn.
        Reject(String),
    }

    impl TestCaseError {
        /// Constructs a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Constructs a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// The RNG handed to strategies — deterministic per test.
    #[derive(Debug, Clone)]
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// An RNG seeded from the (module path, test name) pair, so every
        /// run of a given test draws the same case sequence.
        pub fn for_test(qualified_name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
            for b in qualified_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(SmallRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        /// Rejects generated values failing the predicate (retried, with a
        /// retry cap to surface overly strict filters).
        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                reason,
                f,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        source: S,
        reason: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            for _ in 0..1000 {
                let v = self.source.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive values: {}",
                self.reason
            )
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among type-erased alternatives; see [`prop_oneof!`](crate::prop_oneof).
    pub struct OneOf<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> OneOf<V> {
        /// Builds from a non-empty list of alternatives.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            OneOf { options }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($($s:ident / $v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A / a);
    tuple_strategy!(A / a, B / b);
    tuple_strategy!(A / a, B / b, C / c);
    tuple_strategy!(A / a, B / b, C / c, D / d);
    tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
    tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

    /// Strategy for [`any`](crate::arbitrary::any): full-range values.
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! Default "whole domain" generation for primitive types.

    use crate::strategy::Any;
    use crate::test_runner::TestRng;
    use rand::{Rng, RngCore};
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The full-domain strategy for `T` (e.g. `any::<u64>()`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! arbitrary_via_cast {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_via_cast!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite floats over a wide dynamic range (no NaN/inf, which
            // would poison ordinary arithmetic-property tests).
            let mag = rng.gen_range(-300i32..300) as f64;
            let frac: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            frac * mag.exp2()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::arbitrary(rng) as f32
        }
    }
}

pub mod collection {
    //! Collection strategies ([`vec()`]).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S`; see [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    pub mod prop {
        //! Namespaced strategy modules (`prop::collection::vec`).
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// the whole process) so the runner can report the failing assertion.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Asserts two expressions are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Rejects the current case (re-drawn, not failed) if the precondition is
/// unmet.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategies that share a `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { ... } }`.
///
/// Accepts an optional leading `#![proptest_config(...)]`. Each test draws
/// `config.cases` inputs; `prop_assert*` failures panic with the assertion
/// message (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($config:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let strat = ($($strat,)+);
                let mut executed: u32 = 0;
                let mut rejected: u32 = 0;
                while executed < config.cases {
                    let ($($pat,)+) = $crate::strategy::Strategy::generate(&strat, &mut rng);
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => executed += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            rejected += 1;
                            assert!(
                                rejected <= 10 * config.cases + 100,
                                "proptest: too many prop_assume! rejections in {}",
                                stringify!($name),
                            );
                        }
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest case {} failed after {} passing cases: {}",
                                stringify!($name),
                                executed,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -4i64..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..4).contains(&y));
        }

        #[test]
        fn map_and_flat_map_compose(v in (1usize..8).prop_flat_map(|n| {
            crate::collection::vec(0u64..100, 0..1).prop_map(move |mut v| { v.push(n as u64); v })
        })) {
            prop_assert!(!v.is_empty());
            prop_assert!(*v.last().unwrap() < 8);
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(1u32), Just(2u32), 10u32..20]) {
            prop_assert!(x == 1 || x == 2 || (10..20).contains(&x));
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u32..10) {
            prop_assume!(a != 3);
            prop_assert_ne!(a, 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn config_is_honored(_x in any::<u64>()) {
            prop_assert!(true);
        }
    }

    #[test]
    fn determinism_same_test_name_same_stream() {
        use crate::strategy::Strategy;
        let s = 0u64..1_000_000;
        let mut r1 = crate::test_runner::TestRng::for_test("a::b");
        let mut r2 = crate::test_runner::TestRng::for_test("a::b");
        let xs: Vec<u64> = (0..32).map(|_| s.generate(&mut r1)).collect();
        let ys: Vec<u64> = (0..32).map(|_| s.generate(&mut r2)).collect();
        assert_eq!(xs, ys);
    }
}
