//! Offline vendored subset of the [`rand`](https://crates.io/crates/rand) 0.8
//! API, implemented from scratch for the `noisy-radio` workspace.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the small slice of `rand` it actually uses:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits,
//! * [`rngs::SmallRng`] — here a xoshiro256++ generator seeded via SplitMix64
//!   (the same construction `rand` 0.8 uses on 64-bit targets),
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and uniform `choose`.
//!
//! Every simulation in the workspace derives all randomness from explicit
//! `u64` seeds, so no OS entropy source is needed (or provided): there is no
//! `thread_rng` and no `from_entropy`. Swapping the real `rand` crate back in
//! changes concrete random streams but no API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32` (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step (Steele, Lea & Flood) — used for seed expansion.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators ([`SmallRng`]).

    use crate::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG: xoshiro256++ (Blackman &
    /// Vigna), matching what `rand` 0.8 uses for `SmallRng` on 64-bit
    /// platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point of xoshiro; remap it.
                s = [0xDEAD_BEEF, 0xCAFE_F00D, 0x0123_4567, 0x89AB_CDEF];
            }
            SmallRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

mod distributions_impl {
    use crate::RngCore;

    /// A type samplable uniformly "from the standard distribution":
    /// full-range integers, `[0, 1)` floats, fair-coin bools.
    pub trait Standard: Sized {
        /// Draws one value from `rng`.
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Standard for $t {
                fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Standard for u128 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Standard for bool {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Standard for f64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Standard for f32 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    /// A range argument accepted by [`Rng::gen_range`](crate::Rng::gen_range).
    pub trait SampleRange<T> {
        /// Draws one value uniformly from the range.
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Uniform draw from `[0, span)` for `span >= 1`, or from the full
    /// `u64` domain when `span == 0` (the encoding of 2⁶⁴) — Lemire's
    /// nearly-divisionless bounded sampling.
    fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        if span == 0 {
            return rng.next_u64();
        }
        let mut x = rng.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            while lo < threshold {
                x = rng.next_u64();
                m = (x as u128) * (span as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    macro_rules! impl_range_int {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for ::core::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    // Two's-complement difference is exact modulo 2^64 for
                    // every integer type, signed or not.
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(bounded_u64(rng, span) as $t)
                }
            }

            impl SampleRange<$t> for ::core::ops::RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "gen_range: empty range");
                    // span = end - start + 1; wraps to 0 exactly for the
                    // full-u64 domain, which bounded_u64 handles.
                    let span = (end as u64)
                        .wrapping_sub(start as u64)
                        .wrapping_add(1);
                    start.wrapping_add(bounded_u64(rng, span) as $t)
                }
            }
        )*};
    }
    impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_float {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for ::core::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    // `start + unit * span` can round up to `end` when the
                    // span is within a few ulps of `start`; redraw to keep
                    // the half-open contract (P(hit) < 1, so this
                    // terminates), with a deterministic fallback.
                    for _ in 0..64 {
                        let unit = <$t as Standard>::sample(rng);
                        let v = self.start + unit * (self.end - self.start);
                        if v < self.end {
                            return v;
                        }
                    }
                    self.start
                }
            }
        )*};
    }
    impl_range_float!(f32, f64);
}

pub use distributions_impl::{SampleRange, Standard};

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related extensions ([`SliceRandom`]).

    use crate::{Rng, SampleRange};

    /// Extension trait for slices: shuffling and uniform choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((0..self.len()).sample_from(rng))
            }
        }
    }
}

pub mod prelude {
    //! Re-exports of the most common items, mirroring `rand::prelude`.
    pub use crate::rngs::SmallRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(
            xs,
            (0..16)
                .map(|_| SmallRng::seed_from_u64(43).next_u64())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_hits_all_residues_and_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform sampler missed a residue");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (2200..2800).contains(&hits),
            "gen_bool(0.25) hit {hits}/10000"
        );
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-2.0..3.5);
            assert!((-2.0..3.5).contains(&x));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left the slice sorted");
    }

    #[test]
    fn full_range_inclusive_does_not_overflow() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _: u8 = rng.gen_range(0..=u8::MAX);
        let _: u64 = rng.gen_range(0..=u64::MAX);
    }

    #[test]
    fn inclusive_ranges_ending_at_max_do_not_panic() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..200 {
            let a: u8 = rng.gen_range(1..=u8::MAX);
            assert!(a >= 1);
            let b: u64 = rng.gen_range(5..=u64::MAX);
            assert!(b >= 5);
            let c: i8 = rng.gen_range(0..=i8::MAX);
            assert!(c >= 0);
            let d: i64 = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = d;
        }
    }

    #[test]
    fn inclusive_range_covers_both_endpoints() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut seen = [false; 4];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..=3)] = true;
        }
        assert!(seen.iter().all(|&s| s), "0..=3 never produced some value");
    }

    #[test]
    fn float_range_never_returns_excluded_end() {
        let mut rng = SmallRng::seed_from_u64(17);
        // A one-ulp-wide range maximizes the chance of rounding onto the
        // excluded endpoint.
        let (lo, hi) = (1.0f64, 1.0f64 + f64::EPSILON);
        for _ in 0..2000 {
            let v: f64 = rng.gen_range(lo..hi);
            assert!(v < hi, "gen_range returned the excluded endpoint {v}");
            assert!(v >= lo);
        }
    }
}
